// A small recursive-descent JSON reader for the repo's own machine-readable
// artifacts: committed BENCH_*.json baselines and the slow-query JSONL log.
// It parses a complete document into a JsonValue tree and never throws —
// malformed input yields Status::InvalidArgument, exactly like the other
// hardened parsers in util/string_util.h.
//
// Deliberately scoped: UTF-8 passes through verbatim, \u escapes outside
// the Latin-1 range are rejected (the repo's writers never emit them), and
// depth is capped so hostile input cannot blow the stack.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace altroute {

/// One parsed JSON value. Objects keep their keys sorted (std::map): the
/// repo's writers emit deterministic key orders, so round-trip comparisons
/// in tests stay stable.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the Kind must match (programmer error otherwise,
  /// checked in debug builds). Use the Get* helpers for tolerant access.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup; nullptr when this is not an object or the key is
  /// absent.
  const JsonValue* Find(std::string_view key) const;

  /// Tolerant typed member access: the fallback when this is not an object,
  /// the key is absent, or the member has another type.
  double GetNumber(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  static JsonValue MakeNull();
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing garbage after the value is an
/// error). InvalidArgument on any syntax error, with a byte offset in the
/// message.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace altroute
