#include "util/json_parse.h"

#include <cctype>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace altroute {

bool JsonValue::AsBool() const {
  ALT_DCHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::AsNumber() const {
  ALT_DCHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::AsString() const {
  ALT_DCHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  ALT_DCHECK(kind_ == Kind::kArray);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  ALT_DCHECK(kind_ == Kind::kObject);
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Containers deeper than this are rejected (hostile input must not recurse
/// the parser off the stack). The repo's own artifacts nest 4-5 levels.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    ALTROUTE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        ALTROUTE_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::MakeNull();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ALT_DCHECK(text_[pos_] == '{');
    ++pos_;
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      ALTROUTE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      ALTROUTE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ALT_DCHECK(text_[pos_] == '[');
    ++pos_;
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    for (;;) {
      ALTROUTE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ALT_DCHECK(text_[pos_] == '"');
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            int digit;
            if (h >= '0' && h <= '9') digit = h - '0';
            else if (h >= 'a' && h <= 'f') digit = h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') digit = h - 'A' + 10;
            else return Error("invalid \\u escape digit");
            code = code * 16 + digit;
          }
          // The repo's writers only emit \u00xx for control characters;
          // reject the rest rather than mis-decode multi-byte sequences.
          if (code > 0xFF) return Error("\\u escape outside Latin-1");
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    const size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    // JSON forbids a leading zero on a multi-digit integer part ("01").
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = start;
      return Error("invalid number");
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    auto parsed = ParseDouble(text_.substr(start, pos_ - start));
    if (!parsed.ok() || !std::isfinite(*parsed)) {
      pos_ = start;
      return Error("invalid number");
    }
    return JsonValue::MakeNumber(*parsed);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace altroute
