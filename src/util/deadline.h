// Request deadlines and cooperative cancellation. A Deadline is a wall point
// on the steady clock (immune to NTP steps); a CancellationToken combines a
// deadline with an explicit cancel flag and amortises the expiry check so
// that hot search loops can poll it every heap pop for <1% overhead: the
// fast path is a single counter decrement, and only every kCheckIntervalPops
// pops does the token touch the clock or the shared atomic.
//
// Kernels and generators take a trailing `CancellationToken* cancel =
// nullptr` parameter (mirroring `obs::SearchStats*`): nullptr means "run to
// completion", so existing call sites are unaffected.
//
// Lock discipline: this header is deliberately mutex-free. Deadline is an
// immutable value type and the token's shared cancel flag is a single
// relaxed atomic, so there is nothing for the thread-safety analysis
// (util/thread_annotations.h) to guard — hot search loops must never take a
// lock per pop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace altroute {

/// A point in time after which work should stop. Default-constructed
/// deadlines are infinite (never expire), so threading one through a call
/// chain is free until someone actually sets a budget.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // infinite

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.tp_ = tp;
    d.infinite_ = false;
    return d;
  }

  static Deadline AfterMs(int64_t ms) {
    return At(Clock::now() + std::chrono::milliseconds(ms));
  }

  static Deadline AfterSeconds(double seconds) {
    return At(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds)));
  }

  bool is_infinite() const { return infinite_; }

  bool Expired() const { return !infinite_ && Clock::now() >= tp_; }

  /// Seconds until expiry: +inf when infinite, clamped at 0 once expired.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    const auto left = tp_ - Clock::now();
    const double s = std::chrono::duration<double>(left).count();
    return s > 0.0 ? s : 0.0;
  }

  Clock::time_point time_point() const { return tp_; }

  /// The earlier of two deadlines (infinite acts as the identity).
  static Deadline Min(const Deadline& a, const Deadline& b) {
    if (a.infinite_) return b;
    if (b.infinite_) return a;
    return a.tp_ <= b.tp_ ? a : b;
  }

 private:
  Clock::time_point tp_{};
  bool infinite_ = true;
};

/// Cooperative stop signal: expired deadline OR explicit cancel request.
/// Copyable; copies share the cancel flag (RequestCancel on one is seen by
/// all) but each copy has its own check-amortisation countdown.
class CancellationToken {
 public:
  /// How many ShouldStop() calls take the counter-only fast path between
  /// real checks. At ~10ns per heap pop a full interval is a few μs, so the
  /// reaction latency stays far below the 100ms acceptance bound while the
  /// steady_clock read is paid 1/256th of the time.
  static constexpr uint32_t kCheckIntervalPops = 256;

  CancellationToken() : CancellationToken(Deadline::Infinite()) {}

  explicit CancellationToken(Deadline deadline)
      : deadline_(deadline),
        cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Signals all copies of this token to stop at the next check.
  void RequestCancel() { cancelled_->store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

  /// Amortised check for hot loops: cheap counter decrement most calls, a
  /// real StopNow() every kCheckIntervalPops calls.
  bool ShouldStop() {
    if (--countdown_ != 0) return false;
    countdown_ = kCheckIntervalPops;
    return StopNow();
  }

  /// Unamortised check: use at loop boundaries (per Yen spur, per engine).
  bool StopNow() const { return cancel_requested() || deadline_.Expired(); }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  std::shared_ptr<std::atomic<bool>> cancelled_;
  uint32_t countdown_ = kCheckIntervalPops;
};

}  // namespace altroute
