#include "core/dissimilarity.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

DissimilarityGenerator::DissimilarityGenerator(
    std::shared_ptr<const RoadNetwork> net, std::vector<double> weights,
    const AlternativeOptions& options, SimilarityMeasure measure)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      measure_(measure),
      dijkstra_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
  // The pairwise acceptance test dis(p, P) > theta needs theta in [0, 1):
  // dissimilarity is a [0, 1] ratio, so theta >= 1 rejects every candidate
  // and theta < 0 accepts duplicates (paper fixes theta = 0.5).
  ALT_CHECK(options_.dissimilarity_threshold >= 0.0 &&
            options_.dissimilarity_threshold < 1.0)
      << "dissimilarity threshold out of [0,1)";
}

Result<AlternativeSet> DissimilarityGenerator::Generate(NodeId source,
                                                        NodeId target,
                                                        obs::SearchStats* stats,
                                                        CancellationToken* cancel) {
  // Like Plateaus, SSVP-D+ is powered by the two shortest-path trees.
  ALTROUTE_ASSIGN_OR_RETURN(
      ShortestPathTree fwd,
      dijkstra_.BuildTree(source, weights_, SearchDirection::kForward,
                          kInfCost, stats, cancel));
  size_t settled = dijkstra_.last_settled_count();
  ALTROUTE_ASSIGN_OR_RETURN(
      ShortestPathTree bwd,
      dijkstra_.BuildTree(target, weights_, SearchDirection::kBackward,
                          kInfCost, stats, cancel));
  settled += dijkstra_.last_settled_count();

  if (!fwd.Reached(target)) {
    return Status::NotFound("target unreachable from source");
  }

  AlternativeSet out;
  out.work_settled_nodes = settled;
  out.optimal_cost = fwd.dist[target];
  const double cost_limit = options_.stretch_bound * out.optimal_cost;

  // The fastest path seeds the result set P.
  ALTROUTE_ASSIGN_OR_RETURN(std::vector<EdgeId> sp_edges,
                            fwd.PathTo(*net_, target));
  ALTROUTE_ASSIGN_OR_RETURN(
      Path shortest,
      MakePath(*net_, source, target, std::move(sp_edges), weights_));
  out.routes.push_back(std::move(shortest));
  if (stats != nullptr) ++stats->paths_generated;

  // Candidate via nodes in ascending via-path length, bounded by the
  // stretch limit. Nodes unreached in either tree are excluded.
  std::vector<NodeId> candidates;
  candidates.reserve(net_->num_nodes());
  for (NodeId v = 0; v < net_->num_nodes(); ++v) {
    if (!fwd.Reached(v) || !bwd.Reached(v)) continue;
    const double via = fwd.dist[v] + bwd.dist[v];
    if (via <= cost_limit + 1e-9) candidates.push_back(v);
  }
  std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    const double va = fwd.dist[a] + bwd.dist[a];
    const double vb = fwd.dist[b] + bwd.dist[b];
    if (va != vb) return va < vb;
    return a < b;  // deterministic ties
  });

  for (NodeId v : candidates) {
    if (static_cast<int>(out.routes.size()) >= options_.max_routes) break;
    if (cancel != nullptr && cancel->ShouldStop()) {
      out.completion =
          Status::DeadlineExceeded("via-candidate scan cut short");
      break;  // shortest path already reported; ship what we have
    }

    auto prefix_or = fwd.PathTo(*net_, v);
    auto suffix_or = bwd.PathTo(*net_, v);
    if (!prefix_or.ok() || !suffix_or.ok()) continue;
    std::vector<EdgeId> edges = std::move(prefix_or).ValueOrDie();
    const std::vector<EdgeId> suffix = std::move(suffix_or).ValueOrDie();
    edges.insert(edges.end(), suffix.begin(), suffix.end());

    auto path_or = MakePath(*net_, source, target, std::move(edges), weights_);
    if (!path_or.ok()) continue;
    Path path = std::move(path_or).ValueOrDie();
    if (stats != nullptr) ++stats->paths_generated;

    // Via-paths whose halves share nodes contain loops; such candidates are
    // not valid simple alternatives.
    if (!IsLoopless(*net_, path)) {
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }

    // The defining acceptance test: dis(p, P) > theta.
    if (DissimilarityToSet(*net_, path, out.routes, measure_) <=
        options_.dissimilarity_threshold) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;
    }
    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
