// The Dissimilarity technique (paper Sec. 2.3): SSVP-D+ of Chondrogiannis et
// al. [9]. Via-paths sp(s,v)+sp(v,t) are enumerated in ascending length
// order from the two shortest-path trees; a via-path is accepted only when
// its dissimilarity to every previously accepted path exceeds the threshold
// theta, guaranteeing pairwise-dissimilar, short alternatives.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "core/similarity.h"
#include "routing/dijkstra.h"

namespace altroute {

class DissimilarityGenerator final : public AlternativeRouteGenerator {
 public:
  DissimilarityGenerator(std::shared_ptr<const RoadNetwork> net,
                         std::vector<double> weights,
                         const AlternativeOptions& options = {},
                         SimilarityMeasure measure =
                             SimilarityMeasure::kOverlapOverCandidate);

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  std::string name_ = "dissimilarity";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  AlternativeOptions options_;
  SimilarityMeasure measure_;
  Dijkstra dijkstra_;
};

}  // namespace altroute
