// The common interface of all alternative-route generators and the shared
// option block. Parameter defaults are exactly the paper's (Sec. 3,
// "Parameter Details"): penalty factor 1.4, stretch upper bound 1.4,
// dissimilarity threshold 0.5, up to 3 routes displayed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/path.h"
#include "graph/road_network.h"
#include "obs/search_stats.h"
#include "util/deadline.h"
#include "util/result.h"

namespace altroute {

/// Shared knobs. Individual generators ignore parameters that do not apply
/// to them (e.g. Plateaus ignores penalty_factor).
struct AlternativeOptions {
  /// Maximum number of routes reported (paper: up to 3).
  int max_routes = 3;
  /// No reported route may cost more than this factor times the optimum
  /// (paper: 1.4, the "upper bound" of [2]).
  double stretch_bound = 1.4;
  /// Penalty method: multiply used edge weights by this factor per iteration
  /// (paper: 1.4, following [4]).
  double penalty_factor = 1.4;
  /// Dissimilarity method: candidate accepted iff its dissimilarity to every
  /// accepted path exceeds this threshold (paper: 0.5, following [9, 10]).
  double dissimilarity_threshold = 0.5;
  /// Safety valve for iterative methods (Penalty): hard cap on iterations.
  int max_iterations = 30;
};

/// A generated set of alternatives. routes[0] is always the fastest path
/// under the generator's weights; the rest are the alternatives in the
/// generator's own ranking order.
struct AlternativeSet {
  std::vector<Path> routes;
  /// Optimal (fastest-path) cost under the generator's search weights.
  double optimal_cost = 0.0;
  /// Instrumentation: settled nodes / iterations the generator spent.
  size_t work_settled_nodes = 0;
  /// OK when the generator ran to completion; DeadlineExceeded when it was
  /// cancelled after finding the shortest path, in which case `routes` holds
  /// whatever alternatives were ready (a partial but usable answer).
  Status completion = Status::OK();
};

/// Interface implemented by Penalty, Plateaus, Dissimilarity and the
/// commercial baseline. Implementations are constructed with a network and a
/// weight vector and answer repeated queries; they are not thread-safe.
class AlternativeRouteGenerator {
 public:
  virtual ~AlternativeRouteGenerator() = default;

  /// Technique name ("penalty", "plateau", "dissimilarity", "commercial").
  virtual const std::string& name() const = 0;

  /// Computes alternatives from `source` to `target`. Returns NotFound when
  /// no s-t path exists, InvalidArgument on bad node ids. When `stats` is
  /// non-null, search counters (settled nodes, relaxed edges, generated and
  /// rejected candidates) are accumulated into it; passing nullptr (the
  /// default) disables collection at zero cost.
  ///
  /// When `cancel` is non-null the generator polls it cooperatively. If it
  /// fires before the shortest path is known the call fails with
  /// DeadlineExceeded; if it fires later the call succeeds with the routes
  /// found so far and `AlternativeSet::completion` set to DeadlineExceeded.
  virtual Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                          obs::SearchStats* stats = nullptr,
                                          CancellationToken* cancel = nullptr) = 0;

  /// The weight vector the generator searches with (one entry per edge).
  virtual const std::vector<double>& weights() const = 0;
};

}  // namespace altroute
