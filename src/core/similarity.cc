#include "core/similarity.h"

#include <algorithm>
#include <unordered_set>

namespace altroute {

namespace {

/// Canonical key treating an edge and its reverse twin as the same street.
uint64_t StreetKey(const RoadNetwork& net, EdgeId e) {
  NodeId a = net.tail(e);
  NodeId b = net.head(e);
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

double SharedLengthMeters(const RoadNetwork& net, const Path& a, const Path& b) {
  const Path& small = a.edges.size() <= b.edges.size() ? a : b;
  const Path& large = a.edges.size() <= b.edges.size() ? b : a;
  std::unordered_set<uint64_t> keys;
  keys.reserve(small.edges.size() * 2);
  for (EdgeId e : small.edges) keys.insert(StreetKey(net, e));
  double shared = 0.0;
  // Dedup against double-counting if `large` traverses the same street twice.
  for (EdgeId e : large.edges) {
    auto it = keys.find(StreetKey(net, e));
    if (it != keys.end()) {
      shared += net.length_m(e);
      keys.erase(it);
    }
  }
  return shared;
}

double Similarity(const RoadNetwork& net, const Path& a, const Path& b,
                  SimilarityMeasure measure) {
  if (a.empty() || b.empty()) return (a.empty() && b.empty()) ? 1.0 : 0.0;
  const double shared = SharedLengthMeters(net, a, b);
  double denom = 1.0;
  switch (measure) {
    case SimilarityMeasure::kOverlapOverShorter:
      denom = std::min(a.length_m, b.length_m);
      break;
    case SimilarityMeasure::kJaccardByLength:
      denom = a.length_m + b.length_m - shared;
      break;
    case SimilarityMeasure::kOverlapOverCandidate:
      denom = a.length_m;
      break;
  }
  if (denom <= 0.0) return 0.0;
  return std::clamp(shared / denom, 0.0, 1.0);
}

double DissimilarityToSet(const RoadNetwork& net, const Path& candidate,
                          std::span<const Path> accepted,
                          SimilarityMeasure measure) {
  double dis = 1.0;
  for (const Path& q : accepted) {
    dis = std::min(dis, 1.0 - Similarity(net, candidate, q, measure));
  }
  return dis;
}

}  // namespace altroute
