// Path: the unit of output of every alternative-route generator.
#pragma once

#include <span>
#include <vector>

#include "geo/latlng.h"
#include "graph/road_network.h"
#include "util/result.h"

namespace altroute {

/// A directed s-t path as an edge-id sequence plus cached aggregates.
struct Path {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  std::vector<EdgeId> edges;
  /// Cost under the weights the generator searched with.
  double cost = 0.0;
  /// Length in meters (sum of edge lengths).
  double length_m = 0.0;
  /// Free-flow OSM travel time in seconds (network weights) — the number the
  /// demo displays to users regardless of which engine produced the route.
  double travel_time_s = 0.0;

  bool empty() const { return edges.empty(); }
  size_t num_edges() const { return edges.size(); }
};

/// Builds a Path from an edge sequence, validating contiguity (each edge's
/// tail equals the previous edge's head) and filling the cached aggregates.
/// `cost` is computed under `weights` (pass net.travel_times() when the
/// search weights are the network defaults).
Result<Path> MakePath(const RoadNetwork& net, NodeId source, NodeId target,
                      std::vector<EdgeId> edges, std::span<const double> weights);

/// Node sequence of a path (source first, target last). For an empty path
/// returns {source}.
std::vector<NodeId> PathNodes(const RoadNetwork& net, const Path& path);

/// Coordinate sequence of a path (for polyline encoding / display).
std::vector<LatLng> PathCoords(const RoadNetwork& net, const Path& path);

/// True when the path visits no node twice.
bool IsLoopless(const RoadNetwork& net, const Path& path);

/// True when two paths consist of exactly the same edge sequence.
inline bool SameEdges(const Path& a, const Path& b) { return a.edges == b.edges; }

/// Sum of `weights` over the path's edges (re-costing under another model).
double CostUnder(const Path& path, std::span<const double> weights);

}  // namespace altroute
