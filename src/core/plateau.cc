#include "core/plateau.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

PlateauGenerator::PlateauGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      dijkstra_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
}

Result<std::vector<Plateau>> PlateauGenerator::PlateausFromTrees(
    const ShortestPathTree& fwd, const ShortestPathTree& bwd) {
  const RoadNetwork& net = *net_;

  // An edge e = (u, v) is a plateau edge iff it is the forward-tree parent
  // of v AND the backward-tree parent of u: both trees route through e.
  std::vector<bool> is_plateau(net.num_edges(), false);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const EdgeId e = fwd.parent_edge[v];
    if (e == kInvalidEdge) continue;
    const NodeId u = net.tail(e);
    if (bwd.parent_edge[u] == e) is_plateau[e] = true;
  }

  // Chain maximal runs. A run starts at edge e when the forward parent of
  // tail(e) is not itself a plateau edge.
  std::vector<Plateau> plateaus;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const EdgeId first = fwd.parent_edge[v];
    if (first == kInvalidEdge || !is_plateau[first]) continue;
    const NodeId u = net.tail(first);
    const EdgeId pred = fwd.parent_edge[u];
    if (pred != kInvalidEdge && is_plateau[pred]) continue;  // not a run start

    Plateau pl;
    pl.start = u;
    EdgeId e = first;
    for (;;) {
      // Tree-join containment: every edge of the chained run must itself be
      // a plateau edge, i.e. lie on BOTH shortest-path trees. Joining a
      // non-plateau edge would splice a detour into the middle of the run.
      ALT_DCHECK(is_plateau[e]) << "non-plateau edge chained into run";
      pl.edges.push_back(e);
      pl.length += weights_[e];
      const NodeId head = net.head(e);
      pl.end = head;
      const EdgeId next = bwd.parent_edge[head];
      if (next == kInvalidEdge || !is_plateau[next]) break;
      e = next;
    }
    // Both run endpoints are on their respective trees by construction, so
    // the via cost through the plateau is well defined and can never beat
    // the optimal s-t cost.
    ALT_DCHECK(fwd.Reached(pl.start) && bwd.Reached(pl.end))
        << "plateau endpoints not contained in both trees";
    pl.route_cost = fwd.dist[pl.start] + pl.length + bwd.dist[pl.end];
    plateaus.push_back(std::move(pl));
  }

  std::sort(plateaus.begin(), plateaus.end(),
            [](const Plateau& a, const Plateau& b) {
              if (a.length != b.length) return a.length > b.length;
              return a.route_cost < b.route_cost;  // deterministic ties
            });
  return plateaus;
}

Result<std::vector<Plateau>> PlateauGenerator::ComputePlateaus(NodeId source,
                                                               NodeId target) {
  ALTROUTE_ASSIGN_OR_RETURN(
      ShortestPathTree fwd,
      dijkstra_.BuildTree(source, weights_, SearchDirection::kForward));
  ALTROUTE_ASSIGN_OR_RETURN(
      ShortestPathTree bwd,
      dijkstra_.BuildTree(target, weights_, SearchDirection::kBackward));
  if (!fwd.Reached(target)) {
    return Status::NotFound("target unreachable from source");
  }
  return PlateausFromTrees(fwd, bwd);
}

Result<AlternativeSet> PlateauGenerator::Generate(NodeId source, NodeId target,
                                                  obs::SearchStats* stats,
                                                  CancellationToken* cancel) {
  // Two full Dijkstra trees dominate the cost, exactly as the paper notes.
  // Cancellation mid-tree means not even the shortest path is known yet, so
  // the DeadlineExceeded from BuildTree propagates as the call's error.
  ALTROUTE_ASSIGN_OR_RETURN(
      ShortestPathTree fwd,
      dijkstra_.BuildTree(source, weights_, SearchDirection::kForward,
                          kInfCost, stats, cancel));
  size_t settled = dijkstra_.last_settled_count();
  ALTROUTE_ASSIGN_OR_RETURN(
      ShortestPathTree bwd,
      dijkstra_.BuildTree(target, weights_, SearchDirection::kBackward,
                          kInfCost, stats, cancel));
  settled += dijkstra_.last_settled_count();

  if (!fwd.Reached(target)) {
    return Status::NotFound("target unreachable from source");
  }

  AlternativeSet out;
  out.work_settled_nodes = settled;
  out.optimal_cost = fwd.dist[target];
  const double cost_limit = options_.stretch_bound * out.optimal_cost;

  // The fastest path is reported first (it is itself the plateau that spans
  // the whole optimal route, but we extract it directly from the tree).
  ALTROUTE_ASSIGN_OR_RETURN(std::vector<EdgeId> sp_edges,
                            fwd.PathTo(*net_, target));
  ALTROUTE_ASSIGN_OR_RETURN(
      Path shortest,
      MakePath(*net_, source, target, std::move(sp_edges), weights_));
  out.routes.push_back(std::move(shortest));
  if (stats != nullptr) ++stats->paths_generated;

  ALTROUTE_ASSIGN_OR_RETURN(std::vector<Plateau> plateaus,
                            PlateausFromTrees(fwd, bwd));

  for (const Plateau& pl : plateaus) {
    // A plateau route walks tree branches end to end; its cost is bounded
    // below by the optimal cost (equality for the run spanning the shortest
    // path itself). Small epsilon absorbs re-summation error.
    ALT_DCHECK_GE(pl.route_cost, out.optimal_cost - 1e-6);
    if (static_cast<int>(out.routes.size()) >= options_.max_routes) break;
    if (cancel != nullptr && cancel->StopNow()) {
      out.completion = Status::DeadlineExceeded("plateau ranking cut short");
      break;  // shortest path already reported; ship what we have
    }
    if (pl.route_cost > cost_limit + 1e-9) {
      if (stats != nullptr) ++stats->paths_rejected_stretch;
      continue;
    }

    auto prefix_or = fwd.PathTo(*net_, pl.start);
    auto suffix_or = bwd.PathTo(*net_, pl.end);
    if (!prefix_or.ok() || !suffix_or.ok()) continue;
    std::vector<EdgeId> edges = std::move(prefix_or).ValueOrDie();
    edges.insert(edges.end(), pl.edges.begin(), pl.edges.end());
    const std::vector<EdgeId> suffix = std::move(suffix_or).ValueOrDie();
    edges.insert(edges.end(), suffix.begin(), suffix.end());

    auto path_or = MakePath(*net_, source, target, std::move(edges), weights_);
    if (!path_or.ok()) {  // defensive: malformed joins are dropped
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }
    Path path = std::move(path_or).ValueOrDie();
    if (stats != nullptr) ++stats->paths_generated;

    const bool duplicate =
        std::any_of(out.routes.begin(), out.routes.end(),
                    [&](const Path& p) { return SameEdges(p, path); });
    if (duplicate) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;
    }
    if (!IsLoopless(*net_, path)) {  // tree joins can rarely loop
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }

    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
