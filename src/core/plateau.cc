#include "core/plateau.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

PlateauGenerator::PlateauGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      dijkstra_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
}

PlateauGenerator::PlateauGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   std::shared_ptr<const ContractionHierarchy> ch,
                                   const AlternativeOptions& options)
    : PlateauGenerator(std::move(net), std::move(weights), options) {
  ALT_CHECK(ch != nullptr) << "null hierarchy";
  ALT_CHECK(&ch->network() == net_.get())
      << "hierarchy built over a different network";
  phast_ = std::make_unique<Phast>(std::move(ch));
  name_ = "plateau_ch";
}

void PlateauGenerator::DeriveParents(ShortestPathTree* tree) const {
  const RoadNetwork& net = *net_;
  const bool forward = tree->direction == SearchDirection::kForward;
  tree->parent_edge.assign(net.num_nodes(), kInvalidEdge);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const double dv = tree->dist[v];
    if (v == tree->root || dv == kInfCost) continue;
    // PHAST labels are sums along shortcut arcs, so an original tree edge
    // matches only up to re-association noise. The strict `<` on the
    // neighbour label guarantees acyclicity (weights are positive).
    const double tol = 1e-9 * std::max(1.0, dv);
    const auto edges = forward ? net.InEdges(v) : net.OutEdges(v);
    for (EdgeId e : edges) {
      const NodeId u = forward ? net.tail(e) : net.head(e);
      const double du = tree->dist[u];
      if (du < dv && du + weights_[e] <= dv + tol) {
        tree->parent_edge[v] = e;
        break;
      }
    }
    // No matching edge (possible only if accumulated shortcut error exceeds
    // the tolerance): mark unreached so downstream joins skip v instead of
    // walking a broken chain.
    if (tree->parent_edge[v] == kInvalidEdge) tree->dist[v] = kInfCost;
  }
}

Status PlateauGenerator::BuildTrees(NodeId source, NodeId target,
                                    ShortestPathTree* fwd,
                                    ShortestPathTree* bwd, size_t* settled,
                                    obs::SearchStats* stats,
                                    CancellationToken* cancel) {
  if (phast_ == nullptr) {
    auto fwd_or = dijkstra_.BuildTree(source, weights_,
                                      SearchDirection::kForward, kInfCost,
                                      stats, cancel);
    if (!fwd_or.ok()) return fwd_or.status();
    *fwd = std::move(fwd_or).ValueOrDie();
    *settled = dijkstra_.last_settled_count();
    auto bwd_or = dijkstra_.BuildTree(target, weights_,
                                      SearchDirection::kBackward, kInfCost,
                                      stats, cancel);
    if (!bwd_or.ok()) return bwd_or.status();
    *bwd = std::move(bwd_or).ValueOrDie();
    *settled += dijkstra_.last_settled_count();
    return Status::OK();
  }

  obs::SearchStats local;
  fwd->root = source;
  fwd->direction = SearchDirection::kForward;
  fwd->dist.resize(net_->num_nodes());
  ALTROUTE_RETURN_NOT_OK(phast_->DistancesInto(
      source, SearchDirection::kForward, fwd->dist, &local, cancel));
  DeriveParents(fwd);
  bwd->root = target;
  bwd->direction = SearchDirection::kBackward;
  bwd->dist.resize(net_->num_nodes());
  ALTROUTE_RETURN_NOT_OK(phast_->DistancesInto(
      target, SearchDirection::kBackward, bwd->dist, &local, cancel));
  DeriveParents(bwd);
  *settled = local.nodes_settled;
  if (stats != nullptr) stats->MergeFrom(local);
  return Status::OK();
}

Result<std::vector<Plateau>> PlateauGenerator::PlateausFromTrees(
    const ShortestPathTree& fwd, const ShortestPathTree& bwd) {
  const RoadNetwork& net = *net_;

  // An edge e = (u, v) is a plateau edge iff it is the forward-tree parent
  // of v AND the backward-tree parent of u: both trees route through e.
  std::vector<bool> is_plateau(net.num_edges(), false);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const EdgeId e = fwd.parent_edge[v];
    if (e == kInvalidEdge) continue;
    const NodeId u = net.tail(e);
    if (bwd.parent_edge[u] == e) is_plateau[e] = true;
  }

  // Chain maximal runs. A run starts at edge e when the forward parent of
  // tail(e) is not itself a plateau edge.
  std::vector<Plateau> plateaus;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const EdgeId first = fwd.parent_edge[v];
    if (first == kInvalidEdge || !is_plateau[first]) continue;
    const NodeId u = net.tail(first);
    const EdgeId pred = fwd.parent_edge[u];
    if (pred != kInvalidEdge && is_plateau[pred]) continue;  // not a run start

    Plateau pl;
    pl.start = u;
    EdgeId e = first;
    for (;;) {
      // Tree-join containment: every edge of the chained run must itself be
      // a plateau edge, i.e. lie on BOTH shortest-path trees. Joining a
      // non-plateau edge would splice a detour into the middle of the run.
      ALT_DCHECK(is_plateau[e]) << "non-plateau edge chained into run";
      pl.edges.push_back(e);
      pl.length += weights_[e];
      const NodeId head = net.head(e);
      pl.end = head;
      const EdgeId next = bwd.parent_edge[head];
      if (next == kInvalidEdge || !is_plateau[next]) break;
      e = next;
    }
    // Both run endpoints are on their respective trees by construction, so
    // the via cost through the plateau is well defined and can never beat
    // the optimal s-t cost.
    ALT_DCHECK(fwd.Reached(pl.start) && bwd.Reached(pl.end))
        << "plateau endpoints not contained in both trees";
    pl.route_cost = fwd.dist[pl.start] + pl.length + bwd.dist[pl.end];
    plateaus.push_back(std::move(pl));
  }

  std::sort(plateaus.begin(), plateaus.end(),
            [](const Plateau& a, const Plateau& b) {
              if (a.length != b.length) return a.length > b.length;
              return a.route_cost < b.route_cost;  // deterministic ties
            });
  return plateaus;
}

Result<std::vector<Plateau>> PlateauGenerator::ComputePlateaus(NodeId source,
                                                               NodeId target) {
  ShortestPathTree fwd, bwd;
  size_t settled = 0;
  ALTROUTE_RETURN_NOT_OK(BuildTrees(source, target, &fwd, &bwd, &settled,
                                    /*stats=*/nullptr, /*cancel=*/nullptr));
  if (!fwd.Reached(target)) {
    return Status::NotFound("target unreachable from source");
  }
  return PlateausFromTrees(fwd, bwd);
}

Result<AlternativeSet> PlateauGenerator::Generate(NodeId source, NodeId target,
                                                  obs::SearchStats* stats,
                                                  CancellationToken* cancel) {
  // Tree construction dominates the cost, exactly as the paper notes — two
  // full Dijkstras, or two PHAST sweeps in the CH-backed configuration.
  // Cancellation mid-tree means not even the shortest path is known yet, so
  // the DeadlineExceeded from BuildTrees propagates as the call's error.
  ShortestPathTree fwd, bwd;
  size_t settled = 0;
  ALTROUTE_RETURN_NOT_OK(
      BuildTrees(source, target, &fwd, &bwd, &settled, stats, cancel));

  if (!fwd.Reached(target)) {
    return Status::NotFound("target unreachable from source");
  }

  AlternativeSet out;
  out.work_settled_nodes = settled;
  out.optimal_cost = fwd.dist[target];
  const double cost_limit = options_.stretch_bound * out.optimal_cost;

  // The fastest path is reported first (it is itself the plateau that spans
  // the whole optimal route, but we extract it directly from the tree).
  ALTROUTE_ASSIGN_OR_RETURN(std::vector<EdgeId> sp_edges,
                            fwd.PathTo(*net_, target));
  ALTROUTE_ASSIGN_OR_RETURN(
      Path shortest,
      MakePath(*net_, source, target, std::move(sp_edges), weights_));
  out.routes.push_back(std::move(shortest));
  if (stats != nullptr) ++stats->paths_generated;

  ALTROUTE_ASSIGN_OR_RETURN(std::vector<Plateau> plateaus,
                            PlateausFromTrees(fwd, bwd));

  for (const Plateau& pl : plateaus) {
    // A plateau route walks tree branches end to end; its cost is bounded
    // below by the optimal cost (equality for the run spanning the shortest
    // path itself). Small epsilon absorbs re-summation error.
    ALT_DCHECK_GE(pl.route_cost, out.optimal_cost - 1e-6);
    if (static_cast<int>(out.routes.size()) >= options_.max_routes) break;
    if (cancel != nullptr && cancel->StopNow()) {
      out.completion = Status::DeadlineExceeded("plateau ranking cut short");
      break;  // shortest path already reported; ship what we have
    }
    if (pl.route_cost > cost_limit + 1e-9) {
      if (stats != nullptr) ++stats->paths_rejected_stretch;
      continue;
    }

    auto prefix_or = fwd.PathTo(*net_, pl.start);
    auto suffix_or = bwd.PathTo(*net_, pl.end);
    if (!prefix_or.ok() || !suffix_or.ok()) continue;
    std::vector<EdgeId> edges = std::move(prefix_or).ValueOrDie();
    edges.insert(edges.end(), pl.edges.begin(), pl.edges.end());
    const std::vector<EdgeId> suffix = std::move(suffix_or).ValueOrDie();
    edges.insert(edges.end(), suffix.begin(), suffix.end());

    auto path_or = MakePath(*net_, source, target, std::move(edges), weights_);
    if (!path_or.ok()) {  // defensive: malformed joins are dropped
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }
    Path path = std::move(path_or).ValueOrDie();
    if (stats != nullptr) ++stats->paths_generated;

    const bool duplicate =
        std::any_of(out.routes.begin(), out.routes.end(),
                    [&](const Path& p) { return SameEdges(p, path); });
    if (duplicate) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;
    }
    if (!IsLoopless(*net_, path)) {  // tree joins can rarely loop
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }

    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
