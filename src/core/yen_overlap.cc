#include "core/yen_overlap.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

YenOverlapGenerator::YenOverlapGenerator(std::shared_ptr<const RoadNetwork> net,
                                         std::vector<double> weights,
                                         const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      yen_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
}

Result<AlternativeSet> YenOverlapGenerator::Generate(NodeId source,
                                                     NodeId target,
                                                     obs::SearchStats* stats,
                                                     CancellationToken* cancel) {
  // Yen enumerates in cost order; the incremental variant of [8] would stop
  // adaptively, we request a bounded batch and filter. The batch size trades
  // completeness for cost exactly like the published heuristics.
  const size_t batch = static_cast<size_t>(
      std::max(options_.max_routes * 6, options_.max_iterations));
  ALTROUTE_ASSIGN_OR_RETURN(std::vector<RouteResult> candidates,
                            yen_.Compute(source, target, batch, weights_, cancel));
  if (candidates.empty()) return Status::NotFound("no route found");

  AlternativeSet out;
  // Yen returns the paths found so far when cancelled mid-enumeration; mark
  // the set as cut short so callers can tell a full batch from a truncated
  // one.
  if (cancel != nullptr && cancel->StopNow()) {
    out.completion = Status::DeadlineExceeded("yen enumeration cut short");
  }
  out.optimal_cost = candidates.front().cost;
  const double cost_limit = options_.stretch_bound * out.optimal_cost;

  for (RouteResult& candidate : candidates) {
    if (static_cast<int>(out.routes.size()) >= options_.max_routes) break;
    if (candidate.cost > cost_limit + 1e-9) break;  // cost-ordered: done
    auto path_or = MakePath(*net_, source, target, std::move(candidate.edges),
                            weights_);
    if (!path_or.ok()) continue;
    Path path = std::move(path_or).ValueOrDie();
    if (stats != nullptr) ++stats->paths_generated;
    if (!out.routes.empty() &&
        DissimilarityToSet(*net_, path, out.routes) <=
            options_.dissimilarity_threshold) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;  // overlap with an accepted path is too high
    }
    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
