// The Plateaus technique (paper Sec. 2.2, Choice Routing [11], analysed in
// [2]): join the forward shortest-path tree rooted at s with the backward
// tree rooted at t; maximal branches common to both trees are "plateaus".
// Longer plateaus yield more meaningful alternatives, so the top-k plateaus
// by length are turned into routes sp(s,u) + plateau(u,v) + sp(v,t).
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "routing/dijkstra.h"
#include "routing/phast.h"

namespace altroute {

/// A maximal common branch of the two trees.
struct Plateau {
  NodeId start = kInvalidNode;  // end closer to the source
  NodeId end = kInvalidNode;    // end closer to the target
  std::vector<EdgeId> edges;    // chain from start to end
  double length = 0.0;          // total weight of the chain (search weights)
  /// Cost of the full alternative route through this plateau.
  double route_cost = 0.0;
};

class PlateauGenerator final : public AlternativeRouteGenerator {
 public:
  PlateauGenerator(std::shared_ptr<const RoadNetwork> net,
                   std::vector<double> weights,
                   const AlternativeOptions& options = {});

  /// CH-backed variant ("plateau_ch"): the two full Dijkstra trees — the
  /// dominant cost of this technique — are replaced by PHAST one-to-all
  /// sweeps over `ch` (which must be built for the same network and the same
  /// `weights`), with tree parents re-derived from the distance labels.
  /// Plateau detection and route assembly are unchanged.
  PlateauGenerator(std::shared_ptr<const RoadNetwork> net,
                   std::vector<double> weights,
                   std::shared_ptr<const ContractionHierarchy> ch,
                   const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

  /// Exposed for tests and the Fig. 1 walkthrough: all plateaus of the query
  /// in descending length order (no stretch filtering, no k cap).
  Result<std::vector<Plateau>> ComputePlateaus(NodeId source, NodeId target);

 private:
  Result<std::vector<Plateau>> PlateausFromTrees(const ShortestPathTree& fwd,
                                                 const ShortestPathTree& bwd);

  /// Builds both trees: PHAST sweeps + label-derived parents when phast_ is
  /// set, two full Dijkstras otherwise. `settled` reports the work done.
  Status BuildTrees(NodeId source, NodeId target, ShortestPathTree* fwd,
                    ShortestPathTree* bwd, size_t* settled,
                    obs::SearchStats* stats, CancellationToken* cancel);

  /// Fills parent_edge from the distance labels: the tree edge of v is an
  /// incident edge realising dist[v] (within re-association tolerance, since
  /// PHAST sums along shortcuts). Strictly decreasing labels keep the
  /// derived parents acyclic.
  void DeriveParents(ShortestPathTree* tree) const;

  std::string name_ = "plateau";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  AlternativeOptions options_;
  Dijkstra dijkstra_;
  std::unique_ptr<Phast> phast_;  // null: plain-Dijkstra trees
};

}  // namespace altroute
