// Route-quality metrics. Combines the quantitative criteria of Abraham et
// al. [2] (stretch / uniformly bounded stretch, local optimality, sharing)
// with the perceptual features the paper's participants mention in Sec. 4.2
// (turns, zig-zag, road width, apparent detours). The user-study rating
// model consumes these features.
#pragma once

#include <array>
#include <span>

#include "core/path.h"
#include "routing/dijkstra.h"

namespace altroute {

/// Feature vector of a single route relative to the optimal s-t route.
struct RouteQuality {
  /// cost / optimal cost under the evaluation weights (>= 1 for exact opt).
  double stretch = 1.0;
  /// Number of significant turns (bearing change > 45 degrees).
  int turn_count = 0;
  /// Turns per km — "less zig-zag is better".
  double turns_per_km = 0.0;
  /// Number of detour events: stretches where the route moves away from the
  /// target by more than a threshold before approaching again.
  int detour_count = 0;
  /// Length-weighted mean of typical lane counts — "wider roads" proxy.
  double mean_lanes = 1.0;
  /// Fraction of length on motorway/trunk.
  double freeway_share = 0.0;
  /// Fraction of length on residential/service streets.
  double minor_road_share = 0.0;
};

/// Knobs for the perceptual feature extraction.
struct QualityOptions {
  double turn_threshold_deg = 45.0;
  /// A detour event begins once the great-circle distance to the target has
  /// grown by this many meters from a local minimum.
  double detour_threshold_m = 250.0;
};

/// Computes the feature vector. `optimal_cost` is the best s-t cost under
/// `weights` (pass the generator's own measurement or recompute).
RouteQuality ComputeRouteQuality(const RoadNetwork& net, const Path& path,
                                 double optimal_cost,
                                 std::span<const double> weights,
                                 const QualityOptions& options = {});

/// Result of a (sampled) local-optimality test in the sense of [2]: a path
/// is T-locally optimal when every subpath of cost <= T is itself a shortest
/// path between its endpoints.
struct LocalOptimalityResult {
  /// Subpath windows examined / passed.
  int windows_tested = 0;
  int windows_passed = 0;
  bool AllPassed() const { return windows_tested == windows_passed; }
  double PassFraction() const {
    return windows_tested == 0
               ? 1.0
               : static_cast<double>(windows_passed) / windows_tested;
  }
};

/// Tests T-local optimality with T = `alpha` * optimal_cost by sliding a
/// window over the path and verifying each maximal subpath of cost <= T
/// against a fresh shortest-path query. `stride` > 1 skips windows to bound
/// cost on long paths. Exact when stride == 1.
LocalOptimalityResult TestLocalOptimality(const RoadNetwork& net,
                                          const Path& path, double alpha,
                                          double optimal_cost,
                                          std::span<const double> weights,
                                          Dijkstra* dijkstra, int stride = 1);

/// Aggregate statistics of a *set* of alternatives (what the user sees).
struct RouteSetQuality {
  int num_routes = 0;
  double max_stretch = 1.0;
  double mean_stretch = 1.0;
  /// Highest pairwise similarity (kOverlapOverShorter) within the set.
  double max_pairwise_similarity = 0.0;
  double mean_turns_per_km = 0.0;
  double mean_detours = 0.0;
  double mean_lanes = 1.0;
};

/// Computes set-level quality from per-route features + pairwise overlap.
RouteSetQuality ComputeRouteSetQuality(const RoadNetwork& net,
                                       std::span<const Path> routes,
                                       double optimal_cost,
                                       std::span<const double> weights,
                                       const QualityOptions& options = {});

}  // namespace altroute
