// CommercialBaseline: the stand-in for Google Maps (DESIGN.md Sec. 2). The
// paper treats Google Maps as a black box characterised by three properties:
// (1) it optimises travel time on its *own* (traffic-derived) data, (2) it
// applies additional proprietary filtering/ranking criteria (Sec. 4.2), and
// (3) it reports up to 3 routes. This engine reproduces exactly those
// properties: plateau+via-node candidate generation over a divergent
// commercial weight vector, followed by perceptual ranking and similarity
// pruning.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "core/dissimilarity.h"
#include "core/filters.h"
#include "core/plateau.h"

namespace altroute {

class CommercialBaseline final : public AlternativeRouteGenerator {
 public:
  /// `commercial_weights` should come from a CommercialTrafficModel so the
  /// engine "sees" different data than the OSM-based engines.
  CommercialBaseline(std::shared_ptr<const RoadNetwork> net,
                     std::vector<double> commercial_weights,
                     const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  std::string name_ = "commercial";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  AlternativeOptions options_;
  // Candidate generators run with a wider net (more routes, looser bound)
  // than what is finally reported.
  std::unique_ptr<PlateauGenerator> plateau_;
  std::unique_ptr<DissimilarityGenerator> via_;
};

}  // namespace altroute
