#include "core/path.h"

#include <unordered_set>

namespace altroute {

Result<Path> MakePath(const RoadNetwork& net, NodeId source, NodeId target,
                      std::vector<EdgeId> edges,
                      std::span<const double> weights) {
  if (source >= net.num_nodes() || target >= net.num_nodes()) {
    return Status::InvalidArgument("path endpoint out of range");
  }
  if (weights.size() != net.num_edges()) {
    return Status::InvalidArgument("weight vector size mismatch");
  }
  Path p;
  p.source = source;
  p.target = target;
  NodeId cur = source;
  for (EdgeId e : edges) {
    if (e >= net.num_edges()) {
      return Status::InvalidArgument("edge id out of range");
    }
    if (net.tail(e) != cur) {
      return Status::InvalidArgument("path edges are not contiguous");
    }
    cur = net.head(e);
    p.cost += weights[e];
    p.length_m += net.length_m(e);
    p.travel_time_s += net.travel_time_s(e);
  }
  if (cur != target) {
    return Status::InvalidArgument("path does not end at target");
  }
  p.edges = std::move(edges);
  return p;
}

std::vector<NodeId> PathNodes(const RoadNetwork& net, const Path& path) {
  std::vector<NodeId> nodes;
  nodes.reserve(path.edges.size() + 1);
  nodes.push_back(path.source);
  for (EdgeId e : path.edges) nodes.push_back(net.head(e));
  return nodes;
}

std::vector<LatLng> PathCoords(const RoadNetwork& net, const Path& path) {
  std::vector<LatLng> coords;
  coords.reserve(path.edges.size() + 1);
  for (NodeId n : PathNodes(net, path)) coords.push_back(net.coord(n));
  return coords;
}

bool IsLoopless(const RoadNetwork& net, const Path& path) {
  std::unordered_set<NodeId> seen;
  for (NodeId n : PathNodes(net, path)) {
    if (!seen.insert(n).second) return false;
  }
  return true;
}

double CostUnder(const Path& path, std::span<const double> weights) {
  double total = 0.0;
  for (EdgeId e : path.edges) total += weights[e];
  return total;
}

}  // namespace altroute
