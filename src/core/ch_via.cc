#include "core/ch_via.h"

#include <algorithm>

#include "core/similarity.h"
#include "util/check.h"
#include "util/logging.h"

namespace altroute {

namespace {

/// Fraction of the optimal cost used as the T-test window radius. X-CHV
/// suggests testing a window proportional to the detour; a quarter of the
/// optimal cost keeps the exact sub-query local while still rejecting
/// zig-zag vias whose detour is concentrated at the via node.
constexpr double kTTestRadiusFraction = 0.25;

}  // namespace

ChViaGenerator::ChViaGenerator(std::shared_ptr<const RoadNetwork> net,
                               std::vector<double> weights,
                               std::shared_ptr<const ContractionHierarchy> ch,
                               const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      ch_(std::move(ch)),
      options_(options),
      query_(*ch_),
      tquery_(*ch_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
  ALT_CHECK(&ch_->network() == net_.get())
      << "hierarchy built over a different network";
}

Result<bool> ChViaGenerator::PassesTTest(const Path& path, NodeId via,
                                         double radius,
                                         obs::SearchStats* stats,
                                         CancellationToken* cancel) {
  const RoadNetwork& net = *net_;
  // Locate the via node on the path (unique: callers test loopless paths).
  size_t via_idx = 0;
  NodeId node = path.source;
  while (node != via && via_idx < path.edges.size()) {
    node = net.head(path.edges[via_idx]);
    ++via_idx;
  }
  if (node != via) return Status::Internal("via node not on its own path");

  // Walk outward from the via until the window radius is covered (or the
  // path ends). a / b are node indices into the path's node sequence.
  size_t a = via_idx;
  double before = 0.0;
  while (a > 0 && before < radius) before += weights_[path.edges[--a]];
  size_t b = via_idx;
  double after = 0.0;
  while (b < path.edges.size() && after < radius) {
    after += weights_[path.edges[b++]];
  }
  if (a == b) return true;  // degenerate window (radius 0)

  const NodeId from = a == 0 ? path.source : net.head(path.edges[a - 1]);
  const NodeId to = b == 0 ? path.source : net.head(path.edges[b - 1]);
  const double window_cost = before + after;

  ALTROUTE_ASSIGN_OR_RETURN(RouteResult sp,
                            tquery_.ShortestPath(from, to, stats, cancel));
  // Locally optimal iff the window already is a shortest path (tolerance
  // absorbs re-summation noise over the window's edges).
  return sp.cost >= window_cost - 1e-9 * std::max(1.0, window_cost);
}

Result<AlternativeSet> ChViaGenerator::Generate(NodeId source, NodeId target,
                                                obs::SearchStats* stats,
                                                CancellationToken* cancel) {
  // Local stats double as the work_settled_nodes source; merged once at the
  // end so the stats == nullptr path stays cheap.
  obs::SearchStats local;

  // One bidirectional run with the stretch bound as the pruning slack keeps
  // every label that can still be part of an admissible alternative alive.
  auto run_or = query_.RunBidirectional(source, target, options_.stretch_bound,
                                        &local, cancel);
  if (!run_or.ok()) {
    if (stats != nullptr) stats->MergeFrom(local);
    return run_or.status();
  }

  AlternativeSet out;
  out.optimal_cost = run_or->best_cost;
  const double cost_limit = options_.stretch_bound * out.optimal_cost;

  // routes[0]: the optimal path, unpacked through the meeting node.
  {
    Result<RouteResult> sp = source == target
                                 ? Result<RouteResult>(RouteResult{0.0, {}})
                                 : query_.UnpackViaPath(run_or->meet);
    if (!sp.ok()) {
      if (stats != nullptr) stats->MergeFrom(local);
      return sp.status();
    }
    auto path_or =
        MakePath(*net_, source, target, std::move(sp->edges), weights_);
    if (!path_or.ok()) {
      if (stats != nullptr) stats->MergeFrom(local);
      return path_or.status();
    }
    out.routes.push_back(std::move(path_or).ValueOrDie());
    ++local.paths_generated;
  }

  // Candidate vias in ascending via-cost order: cheaper detours first, which
  // matches the paper's preference for low-stretch alternatives.
  std::vector<NodeId> vias = query_.meeting_nodes();
  std::sort(vias.begin(), vias.end(), [&](NodeId x, NodeId y) {
    const double cx = query_.forward_distance(x) + query_.backward_distance(x);
    const double cy = query_.forward_distance(y) + query_.backward_distance(y);
    if (cx != cy) return cx < cy;
    return x < y;  // deterministic ties
  });

  const double t_radius = kTTestRadiusFraction * out.optimal_cost;
  for (NodeId via : vias) {
    if (static_cast<int>(out.routes.size()) >= options_.max_routes) break;
    if (cancel != nullptr && cancel->StopNow()) {
      out.completion = Status::DeadlineExceeded("via enumeration cut short");
      break;  // shortest path already reported; ship what we have
    }
    const double via_cost =
        query_.forward_distance(via) + query_.backward_distance(via);
    // Equal-cost vias are NOT skipped: on graphs with shortest-path ties
    // (grids) distinct optimal paths are the best alternatives, and vias
    // that merely reproduce routes[0] fall to the SameEdges dedup below.
    if (via_cost > cost_limit + 1e-9) {
      ++local.paths_rejected_stretch;
      // Ascending order: every remaining via is over the bound too.
      break;
    }

    auto unpacked_or = query_.UnpackViaPath(via);
    if (!unpacked_or.ok()) continue;  // defensive: stale label
    auto path_or = MakePath(*net_, source, target,
                            std::move(unpacked_or->edges), weights_);
    if (!path_or.ok()) {
      ++local.paths_rejected_filter;
      continue;
    }
    Path path = std::move(path_or).ValueOrDie();
    ++local.paths_generated;

    const bool duplicate =
        std::any_of(out.routes.begin(), out.routes.end(),
                    [&](const Path& p) { return SameEdges(p, path); });
    if (duplicate) {
      ++local.paths_rejected_similarity;
      continue;
    }
    if (!IsLoopless(*net_, path)) {  // up-down concatenations can loop
      ++local.paths_rejected_filter;
      continue;
    }
    if (DissimilarityToSet(*net_, path, out.routes) <=
        options_.dissimilarity_threshold) {
      ++local.paths_rejected_similarity;
      continue;
    }

    // Most expensive test last: exact CH sub-query around the via node.
    auto t_or = PassesTTest(path, via, t_radius, &local, cancel);
    if (!t_or.ok()) {
      if (t_or.status().IsDeadlineExceeded()) {
        out.completion = t_or.status();
        break;
      }
      ++local.paths_rejected_filter;
      continue;
    }
    if (!*t_or) {
      ++local.paths_rejected_filter;
      continue;
    }

    out.routes.push_back(std::move(path));
  }

  out.work_settled_nodes = local.nodes_settled;
  if (stats != nullptr) stats->MergeFrom(local);
  return out;
}

}  // namespace altroute
