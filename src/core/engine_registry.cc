#include "core/engine_registry.h"

#include "core/commercial.h"
#include "core/dissimilarity.h"
#include "core/penalty.h"
#include "core/plateau.h"
#include "traffic/traffic_model.h"
#include "util/check.h"

namespace altroute {

std::string_view ApproachName(Approach a) {
  switch (a) {
    case Approach::kGoogleMaps:
      return "Google Maps";
    case Approach::kPlateaus:
      return "Plateaus";
    case Approach::kDissimilarity:
      return "Dissimilarity";
    case Approach::kPenalty:
      return "Penalty";
  }
  ALT_UNREACHABLE() << "approach " << static_cast<int>(a);
}

char ApproachLabel(Approach a) {
  return static_cast<char>('A' + static_cast<int>(a));
}

Result<EngineSuite> EngineSuite::MakePaperSuite(
    std::shared_ptr<const RoadNetwork> net, const AlternativeOptions& options,
    int commercial_hour,
    std::shared_ptr<const std::vector<double>> display_weights,
    std::shared_ptr<const ContractionHierarchy> ch) {
  if (net == nullptr) return Status::InvalidArgument("null network");
  if (net->num_nodes() == 0) return Status::InvalidArgument("empty network");
  if (display_weights == nullptr) {
    display_weights = std::make_shared<const std::vector<double>>(
        FreeFlowModel().Weights(*net));
  } else if (display_weights->size() != net->num_edges()) {
    return Status::InvalidArgument(
        "display_weights size does not match the network's edge count");
  }
  if (ch != nullptr && &ch->network() != net.get()) {
    return Status::InvalidArgument(
        "hierarchy was built over a different network");
  }

  EngineSuite suite;
  suite.net_ = net;
  suite.display_weights_ = std::move(display_weights);
  suite.ch_ = ch;

  const CommercialTrafficModel commercial(commercial_hour);
  suite.engines_[static_cast<size_t>(Approach::kGoogleMaps)] =
      std::make_unique<CommercialBaseline>(net, commercial.Weights(*net),
                                           options);
  suite.engines_[static_cast<size_t>(Approach::kDissimilarity)] =
      std::make_unique<DissimilarityGenerator>(net, *suite.display_weights_,
                                               options);
  if (ch != nullptr) {
    suite.engines_[static_cast<size_t>(Approach::kPlateaus)] =
        std::make_unique<PlateauGenerator>(net, *suite.display_weights_, ch,
                                           options);
    suite.engines_[static_cast<size_t>(Approach::kPenalty)] =
        std::make_unique<PenaltyGenerator>(net, *suite.display_weights_,
                                           std::move(ch), options);
  } else {
    suite.engines_[static_cast<size_t>(Approach::kPlateaus)] =
        std::make_unique<PlateauGenerator>(net, *suite.display_weights_,
                                           options);
    suite.engines_[static_cast<size_t>(Approach::kPenalty)] =
        std::make_unique<PenaltyGenerator>(net, *suite.display_weights_,
                                           options);
  }
  return suite;
}

}  // namespace altroute
