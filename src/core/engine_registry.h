// The paper's four-approach suite with its A-D identity masking (Sec. 3:
// "A: Google Maps, B: Plateaus, C: Dissimilarity and D: Penalty").
#pragma once

#include <array>
#include <memory>
#include <string_view>
#include <vector>

#include "core/alternative_generator.h"
#include "routing/contraction_hierarchy.h"
#include "util/result.h"

namespace altroute {

/// The four approaches compared in the user study, in the paper's masking
/// order (A-D).
enum class Approach : int {
  kGoogleMaps = 0,    // commercial baseline on divergent data
  kPlateaus = 1,
  kDissimilarity = 2,
  kPenalty = 3,
};

inline constexpr int kNumApproaches = 4;
inline constexpr std::array<Approach, kNumApproaches> kAllApproaches = {
    Approach::kGoogleMaps, Approach::kPlateaus, Approach::kDissimilarity,
    Approach::kPenalty};

/// Human name as used in the paper's tables.
std::string_view ApproachName(Approach a);

/// Masked label shown to study participants ('A'..'D').
char ApproachLabel(Approach a);

/// The full suite: one engine per approach over a single network. The three
/// OSM-based engines share the network's free-flow weights; the commercial
/// engine gets its own divergent weight vector.
class EngineSuite {
 public:
  /// Builds the paper's configuration: Penalty/Plateaus/Dissimilarity on
  /// free-flow OSM weights, CommercialBaseline on CommercialTrafficModel
  /// weights at `commercial_hour` (paper queries Google at 3:00 am).
  /// `display_weights` lets several suites over the same network (e.g. the
  /// server's per-worker contexts) share one free-flow weight vector instead
  /// of each recomputing it; pass nullptr to compute it here. Its size must
  /// match the network's edge count.
  ///
  /// A non-null `ch` (a contraction hierarchy built over the SAME network
  /// and the free-flow display weights) selects the CH-backed execution
  /// paths: Plateaus runs on PHAST one-to-all sweeps ("plateau_ch") and
  /// Penalty's inner searches become goal-directed A* over CH potentials
  /// ("penalty_ch"). Results are equivalent; only the work changes. The
  /// hierarchy is immutable and shared across suites/workers.
  static Result<EngineSuite> MakePaperSuite(
      std::shared_ptr<const RoadNetwork> net,
      const AlternativeOptions& options = {}, int commercial_hour = 3,
      std::shared_ptr<const std::vector<double>> display_weights = nullptr,
      std::shared_ptr<const ContractionHierarchy> ch = nullptr);

  AlternativeRouteGenerator& engine(Approach a) {
    return *engines_[static_cast<size_t>(a)];
  }
  const RoadNetwork& network() const { return *net_; }
  std::shared_ptr<const RoadNetwork> network_ptr() const { return net_; }

  /// Free-flow OSM weights (what the demo uses to *display* travel times for
  /// all four approaches, paper Sec. 3 "Query Processor").
  const std::vector<double>& display_weights() const {
    return *display_weights_;
  }
  /// The shared handle, for building further suites over the same network.
  std::shared_ptr<const std::vector<double>> display_weights_ptr() const {
    return display_weights_;
  }

  /// The hierarchy the suite was built with; null for the plain-Dijkstra
  /// configuration. Lets callers (bench, debug endpoints) detect which
  /// execution path is live and build further CH consumers.
  std::shared_ptr<const ContractionHierarchy> ch() const { return ch_; }

 private:
  EngineSuite() = default;

  std::shared_ptr<const RoadNetwork> net_;
  std::shared_ptr<const std::vector<double>> display_weights_;
  std::shared_ptr<const ContractionHierarchy> ch_;
  std::array<std::unique_ptr<AlternativeRouteGenerator>, kNumApproaches> engines_;
};

}  // namespace altroute
