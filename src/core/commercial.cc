#include "core/commercial.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

CommercialBaseline::CommercialBaseline(std::shared_ptr<const RoadNetwork> net,
                                       std::vector<double> commercial_weights,
                                       const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(commercial_weights)),
      options_(options) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
  AlternativeOptions wide = options_;
  wide.max_routes = std::max(8, options_.max_routes * 3);
  wide.stretch_bound = options_.stretch_bound * 1.1;
  plateau_ = std::make_unique<PlateauGenerator>(net_, weights_, wide);
  AlternativeOptions via_opts = wide;
  via_opts.dissimilarity_threshold =
      std::min(0.9, options_.dissimilarity_threshold * 0.8);
  via_ = std::make_unique<DissimilarityGenerator>(net_, weights_, via_opts);
}

Result<AlternativeSet> CommercialBaseline::Generate(NodeId source,
                                                    NodeId target,
                                                    obs::SearchStats* stats,
                                                    CancellationToken* cancel) {
  // Candidate pool: plateau routes + via-node routes on commercial data.
  // Both sub-generators accumulate into the same stats object. If the
  // plateau stage is cancelled before its shortest path we have nothing to
  // ship (the error propagates); a cancelled via stage just shrinks the
  // candidate pool.
  ALTROUTE_ASSIGN_OR_RETURN(AlternativeSet plat,
                            plateau_->Generate(source, target, stats, cancel));
  AlternativeSet via;
  auto via_or = via_->Generate(source, target, stats, cancel);
  if (via_or.ok()) {
    via = std::move(via_or).ValueOrDie();
  } else if (!via_or.status().IsDeadlineExceeded()) {
    return via_or.status();
  }

  AlternativeSet out;
  out.optimal_cost = plat.optimal_cost;
  out.work_settled_nodes = plat.work_settled_nodes + via.work_settled_nodes;
  if (!plat.completion.ok()) {
    out.completion = plat.completion;
  } else if (!via_or.ok()) {
    out.completion = via_or.status();
  } else if (!via.completion.ok()) {
    out.completion = via.completion;
  }

  std::vector<Path> pool = std::move(plat.routes);
  for (Path& p : via.routes) {
    const bool duplicate = std::any_of(
        pool.begin(), pool.end(), [&](const Path& q) { return SameEdges(p, q); });
    if (duplicate) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;
    }
    pool.push_back(std::move(p));
  }

  // Proprietary-style refinement: enforce the hard stretch bound on the
  // commercial data, rank by perceptual score, prune near-duplicates.
  const size_t before_stretch = pool.size();
  pool = PruneByStretch(pool, out.optimal_cost, options_.stretch_bound, weights_);
  const size_t before_similarity = pool.size();
  pool = RankPerceptually(*net_, pool, out.optimal_cost, weights_);
  pool = PruneBySimilarity(*net_, pool, /*max_similarity=*/0.6);
  if (stats != nullptr) {
    stats->paths_rejected_stretch += before_stretch - before_similarity;
    stats->paths_rejected_similarity += before_similarity - pool.size();
  }

  if (pool.empty()) return Status::NotFound("no route found");
  if (static_cast<int>(pool.size()) > options_.max_routes) {
    pool.resize(static_cast<size_t>(options_.max_routes));
  }
  out.routes = std::move(pool);
  return out;
}

}  // namespace altroute
