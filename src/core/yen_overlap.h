// YenOverlapGenerator: k-shortest-paths-with-limited-overlap in the style of
// KSPwLO [8] (paper Sec. 2.4): enumerate loopless paths in increasing cost
// with Yen's algorithm and keep those whose overlap with every already
// accepted path stays below a threshold. Not part of the four-approach user
// study; provided as an extension engine.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "core/similarity.h"
#include "routing/yen.h"

namespace altroute {

class YenOverlapGenerator final : public AlternativeRouteGenerator {
 public:
  YenOverlapGenerator(std::shared_ptr<const RoadNetwork> net,
                      std::vector<double> weights,
                      const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  std::string name_ = "yen-overlap";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  AlternativeOptions options_;
  YenKShortestPaths yen_;
};

}  // namespace altroute
