// Post-filters and re-ranking criteria for alternative route sets (paper
// Sec. 4.2, "Additional filtering/ranking criteria are not considered"): the
// refinements the paper says could be layered on any of the techniques —
// similarity pruning, local-optimality filtering, and perceptual ranking
// (fewer turns, wider roads). The filter-ablation bench quantifies their
// effect.
#pragma once

#include <span>
#include <vector>

#include "core/path.h"
#include "core/quality.h"
#include "core/similarity.h"
#include "routing/dijkstra.h"

namespace altroute {

/// Greedily keeps routes (in input order, position 0 always kept) whose
/// similarity to every kept route is at most `max_similarity`.
std::vector<Path> PruneBySimilarity(const RoadNetwork& net,
                                    std::span<const Path> routes,
                                    double max_similarity,
                                    SimilarityMeasure measure =
                                        SimilarityMeasure::kOverlapOverShorter);

/// Drops routes costing more than `stretch_bound` times `optimal_cost` under
/// `weights`.
std::vector<Path> PruneByStretch(std::span<const Path> routes,
                                 double optimal_cost, double stretch_bound,
                                 std::span<const double> weights);

/// Drops routes with more than `max_detours` detour events (position 0
/// always kept).
std::vector<Path> PruneByDetours(const RoadNetwork& net,
                                 std::span<const Path> routes, int max_detours,
                                 const QualityOptions& options = {});

/// Drops routes failing a sampled T-local-optimality test with T =
/// alpha * optimal_cost (position 0 always kept). `stride` bounds work.
std::vector<Path> PruneByLocalOptimality(const RoadNetwork& net,
                                         std::span<const Path> routes,
                                         double alpha, double optimal_cost,
                                         std::span<const double> weights,
                                         Dijkstra* dijkstra, int stride = 4);

/// Perceptual ranking weights (tuned so one unit of stretch dominates).
struct RankingWeights {
  double stretch = 1.0;
  double turns_per_km = 0.02;       // "less zig-zag is better"
  double minor_road_share = 0.25;   // prefer "wider roads"
  double detour = 0.05;
  double freeway_bonus = 0.10;      // negative contribution
};

/// Re-orders routes[1..] by ascending perceptual score (routes[0], the
/// fastest path, keeps its position).
std::vector<Path> RankPerceptually(const RoadNetwork& net,
                                   std::span<const Path> routes,
                                   double optimal_cost,
                                   std::span<const double> weights,
                                   const RankingWeights& rw = {},
                                   const QualityOptions& options = {});

}  // namespace altroute
