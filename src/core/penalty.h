// The Penalty technique (paper Sec. 2.1, following [3, 7]): iteratively
// re-run the shortest-path search, multiplying the weights of edges used by
// the previous result by a penalty factor, until k sufficiently distinct
// paths within the stretch bound are collected.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "routing/dijkstra.h"

namespace altroute {

class PenaltyGenerator final : public AlternativeRouteGenerator {
 public:
  /// `weights` must have one entry per edge; it is copied (the penalty
  /// overlay never mutates the caller's vector or the network).
  PenaltyGenerator(std::shared_ptr<const RoadNetwork> net,
                   std::vector<double> weights,
                   const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  std::string name_ = "penalty";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  AlternativeOptions options_;
  Dijkstra dijkstra_;
  std::vector<double> penalized_;  // workspace reused across queries
};

}  // namespace altroute
