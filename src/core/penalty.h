// The Penalty technique (paper Sec. 2.1, following [3, 7]): iteratively
// re-run the shortest-path search, multiplying the weights of edges used by
// the previous result by a penalty factor, until k sufficiently distinct
// paths within the stretch bound are collected.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "routing/dijkstra.h"
#include "routing/phast.h"

namespace altroute {

class PenaltyGenerator final : public AlternativeRouteGenerator {
 public:
  /// `weights` must have one entry per edge; it is copied (the penalty
  /// overlay never mutates the caller's vector or the network).
  PenaltyGenerator(std::shared_ptr<const RoadNetwork> net,
                   std::vector<double> weights,
                   const AlternativeOptions& options = {});

  /// CH-backed variant ("penalty_ch"): one backward PHAST sweep from the
  /// target (over `ch`, which must be built for the same network and the
  /// same `weights`) yields exact distance-to-target potentials, turning
  /// every penalty iteration's inner Dijkstra into goal-directed A*. The
  /// potentials stay admissible across iterations because penalties only
  /// grow weights above the base the hierarchy was built for.
  PenaltyGenerator(std::shared_ptr<const RoadNetwork> net,
                   std::vector<double> weights,
                   std::shared_ptr<const ContractionHierarchy> ch,
                   const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  /// Multiplies the penalty factor into every edge between the endpoints of
  /// `e`, both directions. Parallel edges (dual carriageways digitized as
  /// multi-edges) must all be penalized, or the next search sidesteps the
  /// penalty through an untouched twin.
  void PenalizeStreet(EdgeId e);

  /// One inner shortest-path search: goal-directed A* over the CH potential
  /// when available, plain Dijkstra otherwise.
  Result<RouteResult> InnerSearch(NodeId source, NodeId target,
                                  obs::SearchStats* stats,
                                  CancellationToken* cancel);

  std::string name_ = "penalty";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  AlternativeOptions options_;
  Dijkstra dijkstra_;
  std::vector<double> penalized_;  // workspace reused across queries
  std::unique_ptr<Phast> phast_;   // null: plain Dijkstra inner searches
  std::vector<double> potential_;  // distance-to-target table (CH mode)
  NodeId potential_target_ = kInvalidNode;  // node potential_ is valid for
};

}  // namespace altroute
