// SkylineGenerator: alternative routes from the Pareto front over
// (travel time, distance) — the "Pareto optimal paths [5, 6]" family the
// paper lists among other alternative-route techniques (Sec. 2.4). Not part
// of the four-approach user study; provided as an extension engine so the
// technique can be compared on the same harness.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "core/similarity.h"
#include "routing/pareto.h"

namespace altroute {

class SkylineGenerator final : public AlternativeRouteGenerator {
 public:
  /// `weights` is the primary criterion (travel time); the edge lengths of
  /// `net` are the secondary criterion.
  SkylineGenerator(std::shared_ptr<const RoadNetwork> net,
                   std::vector<double> weights,
                   const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  /// Reports the fastest path plus up to k-1 Pareto-optimal alternatives
  /// within the stretch bound, greedily selected for pairwise diversity.
  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  std::string name_ = "skyline";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  std::vector<double> lengths_;
  AlternativeOptions options_;
  BiCriteriaSearch search_;
};

}  // namespace altroute
