#include "core/alternative_graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace altroute {

namespace {

uint64_t SegmentKey(const RoadNetwork& net, EdgeId e) {
  NodeId a = net.tail(e);
  NodeId b = net.head(e);
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

AlternativeGraph BuildAlternativeGraph(const RoadNetwork& net,
                                       std::span<const Path> routes) {
  AlternativeGraph out;
  if (routes.empty()) return out;

  std::unordered_set<uint64_t> segments;
  std::unordered_set<NodeId> nodes;
  // node -> distinct neighbour nodes reachable via graph segments leaving it
  // in travel direction.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> successors;

  double min_length = routes[0].length_m;
  double length_sum = 0.0;
  for (const Path& p : routes) {
    min_length = std::min(min_length, p.length_m);
    length_sum += p.length_m;
    for (EdgeId e : p.edges) {
      nodes.insert(net.tail(e));
      nodes.insert(net.head(e));
      successors[net.tail(e)].insert(net.head(e));
      if (segments.insert(SegmentKey(net, e)).second) {
        out.total_length_m += net.length_m(e);
      }
    }
  }

  out.num_unique_segments = segments.size();
  out.num_nodes = nodes.size();
  for (const auto& [node, nexts] : successors) {
    if (nexts.size() >= 2) ++out.num_decision_nodes;
  }
  if (min_length > 0.0) {
    out.total_distance_ratio = out.total_length_m / min_length;
    out.average_distance_ratio =
        length_sum / (static_cast<double>(routes.size()) * min_length);
  }
  return out;
}

}  // namespace altroute
