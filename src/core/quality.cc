#include "core/quality.h"

#include <algorithm>
#include <cmath>

#include "core/similarity.h"

namespace altroute {

RouteQuality ComputeRouteQuality(const RoadNetwork& net, const Path& path,
                                 double optimal_cost,
                                 std::span<const double> weights,
                                 const QualityOptions& options) {
  RouteQuality q;
  if (path.empty()) return q;

  const double cost = CostUnder(path, weights);
  q.stretch = optimal_cost > 0.0 ? cost / optimal_cost : 1.0;

  // Turns.
  const auto coords = PathCoords(net, path);
  for (size_t i = 1; i + 1 < coords.size(); ++i) {
    if (TurnAngleDegrees(coords[i - 1], coords[i], coords[i + 1]) >
        options.turn_threshold_deg) {
      ++q.turn_count;
    }
  }
  const double km = std::max(1e-3, path.length_m / 1000.0);
  q.turns_per_km = q.turn_count / km;

  // Detour events: count local excursions away from the target.
  const LatLng goal = net.coord(path.target);
  double min_so_far = HaversineMeters(coords.front(), goal);
  bool in_detour = false;
  for (const LatLng& p : coords) {
    const double d = HaversineMeters(p, goal);
    if (d < min_so_far) {
      min_so_far = d;
      in_detour = false;
    } else if (!in_detour && d > min_so_far + options.detour_threshold_m) {
      in_detour = true;
      ++q.detour_count;
    }
  }

  // Road-class composition (length-weighted).
  double lanes_sum = 0.0;
  double freeway_len = 0.0;
  double minor_len = 0.0;
  for (EdgeId e : path.edges) {
    const RoadClass rc = net.road_class(e);
    const double len = net.length_m(e);
    lanes_sum += TypicalLanes(rc) * len;
    if (IsFreeway(rc)) freeway_len += len;
    if (rc == RoadClass::kResidential || rc == RoadClass::kService) {
      minor_len += len;
    }
  }
  if (path.length_m > 0.0) {
    q.mean_lanes = lanes_sum / path.length_m;
    q.freeway_share = freeway_len / path.length_m;
    q.minor_road_share = minor_len / path.length_m;
  }
  return q;
}

LocalOptimalityResult TestLocalOptimality(const RoadNetwork& net,
                                          const Path& path, double alpha,
                                          double optimal_cost,
                                          std::span<const double> weights,
                                          Dijkstra* dijkstra, int stride) {
  LocalOptimalityResult result;
  if (path.empty() || dijkstra == nullptr) return result;
  stride = std::max(1, stride);
  const double t_bound = alpha * optimal_cost;
  const auto nodes = PathNodes(net, path);

  // Prefix costs for O(1) subpath cost lookups.
  std::vector<double> prefix(nodes.size(), 0.0);
  for (size_t i = 0; i < path.edges.size(); ++i) {
    prefix[i + 1] = prefix[i] + weights[path.edges[i]];
  }

  for (size_t i = 0; i + 1 < nodes.size();
       i += static_cast<size_t>(stride)) {
    // Maximal j with subpath cost <= t_bound.
    size_t j = i + 1;
    while (j + 1 < nodes.size() && prefix[j + 1] - prefix[i] <= t_bound) ++j;
    if (prefix[j] - prefix[i] > t_bound) continue;  // single edge too long
    ++result.windows_tested;
    auto sp = dijkstra->ShortestPath(nodes[i], nodes[j], weights);
    const double sub_cost = prefix[j] - prefix[i];
    if (sp.ok() && sp->cost >= sub_cost - 1e-6) {
      ++result.windows_passed;
    }
  }
  return result;
}

RouteSetQuality ComputeRouteSetQuality(const RoadNetwork& net,
                                       std::span<const Path> routes,
                                       double optimal_cost,
                                       std::span<const double> weights,
                                       const QualityOptions& options) {
  RouteSetQuality out;
  out.num_routes = static_cast<int>(routes.size());
  if (routes.empty()) return out;

  double stretch_sum = 0.0, turns_sum = 0.0, detour_sum = 0.0, lanes_sum = 0.0;
  for (const Path& p : routes) {
    const RouteQuality q =
        ComputeRouteQuality(net, p, optimal_cost, weights, options);
    out.max_stretch = std::max(out.max_stretch, q.stretch);
    stretch_sum += q.stretch;
    turns_sum += q.turns_per_km;
    detour_sum += q.detour_count;
    lanes_sum += q.mean_lanes;
  }
  const double n = static_cast<double>(routes.size());
  out.mean_stretch = stretch_sum / n;
  out.mean_turns_per_km = turns_sum / n;
  out.mean_detours = detour_sum / n;
  out.mean_lanes = lanes_sum / n;

  for (size_t i = 0; i < routes.size(); ++i) {
    for (size_t j = i + 1; j < routes.size(); ++j) {
      out.max_pairwise_similarity = std::max(
          out.max_pairwise_similarity,
          Similarity(net, routes[i], routes[j],
                     SimilarityMeasure::kOverlapOverShorter));
    }
  }
  return out;
}

}  // namespace altroute
