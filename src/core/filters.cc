#include "core/filters.h"

#include <algorithm>

namespace altroute {

std::vector<Path> PruneBySimilarity(const RoadNetwork& net,
                                    std::span<const Path> routes,
                                    double max_similarity,
                                    SimilarityMeasure measure) {
  std::vector<Path> kept;
  for (size_t i = 0; i < routes.size(); ++i) {
    const Path& cand = routes[i];
    bool ok = true;
    if (i > 0) {
      for (const Path& k : kept) {
        if (Similarity(net, cand, k, measure) > max_similarity) {
          ok = false;
          break;
        }
      }
    }
    if (ok) kept.push_back(cand);
  }
  return kept;
}

std::vector<Path> PruneByStretch(std::span<const Path> routes,
                                 double optimal_cost, double stretch_bound,
                                 std::span<const double> weights) {
  std::vector<Path> kept;
  const double limit = optimal_cost * stretch_bound + 1e-9;
  for (const Path& p : routes) {
    if (CostUnder(p, weights) <= limit) kept.push_back(p);
  }
  return kept;
}

std::vector<Path> PruneByDetours(const RoadNetwork& net,
                                 std::span<const Path> routes, int max_detours,
                                 const QualityOptions& options) {
  std::vector<Path> kept;
  for (size_t i = 0; i < routes.size(); ++i) {
    if (i == 0) {
      kept.push_back(routes[i]);
      continue;
    }
    // Stretch is irrelevant to the detour count; pass 1.0 as optimal.
    const RouteQuality q =
        ComputeRouteQuality(net, routes[i], 1.0, net.travel_times(), options);
    if (q.detour_count <= max_detours) kept.push_back(routes[i]);
  }
  return kept;
}

std::vector<Path> PruneByLocalOptimality(const RoadNetwork& net,
                                         std::span<const Path> routes,
                                         double alpha, double optimal_cost,
                                         std::span<const double> weights,
                                         Dijkstra* dijkstra, int stride) {
  (void)net;
  std::vector<Path> kept;
  for (size_t i = 0; i < routes.size(); ++i) {
    if (i == 0) {
      kept.push_back(routes[i]);
      continue;
    }
    const LocalOptimalityResult lo = TestLocalOptimality(
        dijkstra->network(), routes[i], alpha, optimal_cost, weights, dijkstra,
        stride);
    if (lo.AllPassed()) kept.push_back(routes[i]);
  }
  return kept;
}

std::vector<Path> RankPerceptually(const RoadNetwork& net,
                                   std::span<const Path> routes,
                                   double optimal_cost,
                                   std::span<const double> weights,
                                   const RankingWeights& rw,
                                   const QualityOptions& options) {
  std::vector<Path> out(routes.begin(), routes.end());
  if (out.size() <= 2) return out;
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 1; i < out.size(); ++i) {
    const RouteQuality q =
        ComputeRouteQuality(net, out[i], optimal_cost, weights, options);
    const double score = rw.stretch * q.stretch +
                         rw.turns_per_km * q.turns_per_km +
                         rw.minor_road_share * q.minor_road_share +
                         rw.detour * q.detour_count -
                         rw.freeway_bonus * q.freeway_share;
    scored.emplace_back(score, i);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Path> ranked;
  ranked.push_back(out[0]);
  for (const auto& [score, idx] : scored) ranked.push_back(out[idx]);
  return ranked;
}

}  // namespace altroute
