#include "core/penalty.h"

#include <algorithm>

#include "core/similarity.h"
#include "util/check.h"
#include "util/logging.h"

namespace altroute {

PenaltyGenerator::PenaltyGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      dijkstra_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
  // The method is only correct for a non-shrinking re-weighting: a factor
  // below 1 would make penalized edges MORE attractive each round and the
  // iteration would re-discover the same path forever (paper uses 1.4).
  ALT_CHECK_GE(options_.penalty_factor, 1.0)
      << "penalty factor must not shrink edge weights";
}

PenaltyGenerator::PenaltyGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   std::shared_ptr<const ContractionHierarchy> ch,
                                   const AlternativeOptions& options)
    : PenaltyGenerator(std::move(net), std::move(weights), options) {
  ALT_CHECK(ch != nullptr) << "null hierarchy";
  ALT_CHECK(&ch->network() == net_.get())
      << "hierarchy built over a different network";
  phast_ = std::make_unique<Phast>(std::move(ch));
  name_ = "penalty_ch";
}

void PenaltyGenerator::PenalizeStreet(EdgeId e) {
  const NodeId u = net_->tail(e);
  const NodeId v = net_->head(e);
  for (EdgeId same : net_->OutEdges(u)) {
    if (net_->head(same) == v) penalized_[same] *= options_.penalty_factor;
  }
  for (EdgeId twin : net_->OutEdges(v)) {
    if (net_->head(twin) == u) penalized_[twin] *= options_.penalty_factor;
  }
  // Re-weighting monotonicity: a penalized weight never drops below the
  // true weight, so real path costs stay a lower bound of search costs.
  ALT_DCHECK_GE(penalized_[e], weights_[e]);
}

Result<RouteResult> PenaltyGenerator::InnerSearch(NodeId source, NodeId target,
                                                  obs::SearchStats* stats,
                                                  CancellationToken* cancel) {
  if (phast_ == nullptr || potential_target_ != target) {
    return dijkstra_.ShortestPath(source, target, penalized_,
                                  /*skip_edge=*/nullptr, stats, cancel);
  }
  return dijkstra_.ShortestPathWithPotential(source, target, penalized_,
                                             potential_, stats, cancel);
}

Result<AlternativeSet> PenaltyGenerator::Generate(NodeId source, NodeId target,
                                                  obs::SearchStats* stats,
                                                  CancellationToken* cancel) {
  AlternativeSet out;
  penalized_.assign(weights_.begin(), weights_.end());

  // CH mode: one backward PHAST sweep from the target yields the exact
  // distance-to-target potential every iteration's A* reuses. Invalidated
  // first so a cancelled sweep cannot leave a stale table behind.
  potential_target_ = kInvalidNode;
  if (phast_ != nullptr && target < net_->num_nodes()) {
    potential_.resize(net_->num_nodes());
    ALTROUTE_RETURN_NOT_OK(phast_->DistancesInto(
        target, SearchDirection::kBackward, potential_, stats, cancel));
    potential_target_ = target;
  }

  // Iteration 1 yields the true shortest path (no penalties applied yet).
  auto first = InnerSearch(source, target, stats, cancel);
  if (!first.ok()) return first.status();
  out.work_settled_nodes += dijkstra_.last_settled_count();
  if (stats != nullptr) {
    ++stats->iterations;
    ++stats->paths_generated;
  }

  ALTROUTE_ASSIGN_OR_RETURN(
      Path shortest, MakePath(*net_, source, target, std::move(first->edges),
                              weights_));
  out.optimal_cost = shortest.cost;
  const double cost_limit = options_.stretch_bound * out.optimal_cost;
  out.routes.push_back(std::move(shortest));

  int iterations = 1;
  while (static_cast<int>(out.routes.size()) < options_.max_routes &&
         iterations < options_.max_iterations) {
    if (cancel != nullptr && cancel->StopNow()) {
      out.completion = Status::DeadlineExceeded("penalty iterations cut short");
      break;  // shortest path already reported; ship what we have
    }
    ++iterations;
    // Penalize every edge of the most recent path's streets — all parallel
    // edges between the endpoints and all reverse twins, so the search can
    // sidestep the penalty neither by driving the opposite carriageway nor
    // by hopping onto a parallel twin of the same direction.
    for (EdgeId e : out.routes.back().edges) PenalizeStreet(e);

    auto next = InnerSearch(source, target, stats, cancel);
    if (!next.ok()) {
      // Penalties cannot disconnect the graph, but stay defensive; a
      // cancelled search additionally marks the set as cut short.
      if (next.status().IsDeadlineExceeded()) out.completion = next.status();
      break;
    }
    out.work_settled_nodes += dijkstra_.last_settled_count();
    if (stats != nullptr) {
      ++stats->iterations;
      ++stats->paths_generated;
    }

    auto path_or = MakePath(*net_, source, target, std::move(next->edges),
                            weights_);
    if (!path_or.ok()) return path_or.status();
    Path path = std::move(path_or).ValueOrDie();

    // Real (unpenalized) cost must respect the stretch bound; once the
    // cheapest new path exceeds it, later iterations only get worse in
    // penalized cost but can oscillate in real cost, so keep iterating
    // until the iteration cap — but never accept an over-bound path.
    if (path.cost > cost_limit + 1e-9) {
      if (stats != nullptr) ++stats->paths_rejected_stretch;
      continue;
    }

    // Reject exact duplicates of already accepted paths.
    const bool duplicate =
        std::any_of(out.routes.begin(), out.routes.end(),
                    [&](const Path& p) { return SameEdges(p, path); });
    if (duplicate) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;
    }

    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
