#include "core/penalty.h"

#include <algorithm>

#include "core/similarity.h"
#include "util/check.h"
#include "util/logging.h"

namespace altroute {

PenaltyGenerator::PenaltyGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      options_(options),
      dijkstra_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
  // The method is only correct for a non-shrinking re-weighting: a factor
  // below 1 would make penalized edges MORE attractive each round and the
  // iteration would re-discover the same path forever (paper uses 1.4).
  ALT_CHECK_GE(options_.penalty_factor, 1.0)
      << "penalty factor must not shrink edge weights";
}

Result<AlternativeSet> PenaltyGenerator::Generate(NodeId source, NodeId target,
                                                  obs::SearchStats* stats,
                                                  CancellationToken* cancel) {
  AlternativeSet out;
  penalized_.assign(weights_.begin(), weights_.end());

  // Iteration 1 yields the true shortest path (no penalties applied yet).
  auto first = dijkstra_.ShortestPath(source, target, penalized_,
                                      /*skip_edge=*/nullptr, stats, cancel);
  if (!first.ok()) return first.status();
  out.work_settled_nodes += dijkstra_.last_settled_count();
  if (stats != nullptr) {
    ++stats->iterations;
    ++stats->paths_generated;
  }

  ALTROUTE_ASSIGN_OR_RETURN(
      Path shortest, MakePath(*net_, source, target, std::move(first->edges),
                              weights_));
  out.optimal_cost = shortest.cost;
  const double cost_limit = options_.stretch_bound * out.optimal_cost;
  out.routes.push_back(std::move(shortest));

  int iterations = 1;
  while (static_cast<int>(out.routes.size()) < options_.max_routes &&
         iterations < options_.max_iterations) {
    if (cancel != nullptr && cancel->StopNow()) {
      out.completion = Status::DeadlineExceeded("penalty iterations cut short");
      break;  // shortest path already reported; ship what we have
    }
    ++iterations;
    // Penalize the edges of the most recent path (and their reverse twins,
    // so the search does not sidestep the penalty by driving the opposite
    // carriageway of the same street).
    for (EdgeId e : out.routes.back().edges) {
      penalized_[e] *= options_.penalty_factor;
      const EdgeId twin = net_->FindEdge(net_->head(e), net_->tail(e));
      if (twin != kInvalidEdge) penalized_[twin] *= options_.penalty_factor;
      // Re-weighting monotonicity: a penalized weight never drops below the
      // true weight, so real path costs stay a lower bound of search costs.
      ALT_DCHECK_GE(penalized_[e], weights_[e]);
    }

    auto next = dijkstra_.ShortestPath(source, target, penalized_,
                                       /*skip_edge=*/nullptr, stats, cancel);
    if (!next.ok()) {
      // Penalties cannot disconnect the graph, but stay defensive; a
      // cancelled search additionally marks the set as cut short.
      if (next.status().IsDeadlineExceeded()) out.completion = next.status();
      break;
    }
    out.work_settled_nodes += dijkstra_.last_settled_count();
    if (stats != nullptr) {
      ++stats->iterations;
      ++stats->paths_generated;
    }

    auto path_or = MakePath(*net_, source, target, std::move(next->edges),
                            weights_);
    if (!path_or.ok()) return path_or.status();
    Path path = std::move(path_or).ValueOrDie();

    // Real (unpenalized) cost must respect the stretch bound; once the
    // cheapest new path exceeds it, later iterations only get worse in
    // penalized cost but can oscillate in real cost, so keep iterating
    // until the iteration cap — but never accept an over-bound path.
    if (path.cost > cost_limit + 1e-9) {
      if (stats != nullptr) ++stats->paths_rejected_stretch;
      continue;
    }

    // Reject exact duplicates of already accepted paths.
    const bool duplicate =
        std::any_of(out.routes.begin(), out.routes.end(),
                    [&](const Path& p) { return SameEdges(p, path); });
    if (duplicate) {
      if (stats != nullptr) ++stats->paths_rejected_similarity;
      continue;
    }

    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
