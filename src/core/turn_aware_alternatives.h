// Turn-aware alternative routes: runs any of the paper's generators on an
// explicit edge-expanded road network, so the alternatives respect turn
// costs and turn restrictions (paper Sec. 4.2: participants' complaints
// about "zig-zag" routes and apparent detours largely stem from node-based
// routing ignoring maneuver costs).
//
// Expansion layout (a standard line-graph construction):
//   * one "departure gateway" node per original node (arcs only leave it),
//   * one "arrival gateway" node per original node (arcs only enter it),
//   * one state node per original directed edge,
//   * arcs: gateway_out(v) -> state(e) for e leaving v (cost of e),
//           state(e) -> state(e') for each permitted maneuver
//           (cost of e' + turn penalty), and
//           state(e) -> gateway_in(head(e)) (negligible epsilon cost).
// Keeping the two gateways separate prevents through-traffic from skipping
// turn penalties at intermediate nodes.
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "routing/turn_aware.h"

namespace altroute {

/// The expanded network plus the mappings needed to translate results back.
struct TurnExpandedNetwork {
  std::shared_ptr<RoadNetwork> expanded;
  /// Original node -> its gateway nodes in the expansion.
  std::vector<NodeId> out_gateway;  // departures start here
  std::vector<NodeId> in_gateway;   // arrivals end here
  /// Expanded edge id -> original edge traversed (kInvalidEdge for the
  /// virtual arrival arcs).
  std::vector<EdgeId> original_edge;

  /// Builds the expansion. Restriction validation mirrors TurnAwareRouter.
  static Result<TurnExpandedNetwork> Build(
      const RoadNetwork& net, const TurnCostModel& model = {},
      std::span<const TurnRestriction> restrictions = {});
};

/// Which of the study generators to run on the expansion.
enum class TurnAwareBase { kPlateaus, kDissimilarity, kPenalty };

/// An AlternativeRouteGenerator over the ORIGINAL network's node ids whose
/// routes respect turn costs/restrictions. Route costs include maneuver
/// penalties; lengths/travel times aggregate the original edges.
class TurnAwareAlternatives final : public AlternativeRouteGenerator {
 public:
  static Result<std::unique_ptr<TurnAwareAlternatives>> Create(
      std::shared_ptr<const RoadNetwork> net, TurnAwareBase base,
      const TurnCostModel& model = {},
      std::span<const TurnRestriction> restrictions = {},
      const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override;

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  TurnAwareAlternatives() = default;

  std::string name_;
  std::shared_ptr<const RoadNetwork> net_;
  TurnExpandedNetwork expansion_;
  std::unique_ptr<AlternativeRouteGenerator> inner_;
};

}  // namespace altroute
