// Via-node alternatives over a contraction hierarchy (X-CHV: Dees,
// Geisberger, Sanders & Bader, "Defining and Computing Alternative Routes in
// Road Networks"). One bidirectional upward CH run yields the optimal route
// AND the candidate via set for free: every node reached by both searches
// induces the route sp(s,v) + sp-ish(v,t) at cost df(v) + db(v). Candidates
// are admitted by the paper's three tests — bounded stretch, limited sharing
// (dissimilarity threshold) and local optimality (the T-test: the window of
// the route around the via node must itself be a shortest path, checked with
// an exact CH query).
//
// Compared to the plain generators this replaces two full Dijkstra trees (or
// k penalised searches) with upward searches that touch a tiny fraction of
// the graph, which is the whole point of the exercise (ROADMAP: CH-backed
// alternative generation).
#pragma once

#include <memory>

#include "core/alternative_generator.h"
#include "routing/contraction_hierarchy.h"

namespace altroute {

class ChViaGenerator final : public AlternativeRouteGenerator {
 public:
  /// `weights` must match the vector the hierarchy was built for — the CH
  /// search answers are only correct under its own weights. Checked at
  /// construction time against size; costs are verified per-query in tests.
  ChViaGenerator(std::shared_ptr<const RoadNetwork> net,
                 std::vector<double> weights,
                 std::shared_ptr<const ContractionHierarchy> ch,
                 const AlternativeOptions& options = {});

  const std::string& name() const override { return name_; }
  const std::vector<double>& weights() const override { return weights_; }

  Result<AlternativeSet> Generate(NodeId source, NodeId target,
                                  obs::SearchStats* stats = nullptr,
                                  CancellationToken* cancel = nullptr) override;

 private:
  /// T-test (local optimality): true iff the subpath of `path` spanning a
  /// cost window of radius `radius` around the via node (first occurrence,
  /// paths are loopless by the time this runs) is itself a shortest path,
  /// verified with an exact CH query on `tquery_`.
  Result<bool> PassesTTest(const Path& path, NodeId via, double radius,
                           obs::SearchStats* stats, CancellationToken* cancel);

  std::string name_ = "ch_via";
  std::shared_ptr<const RoadNetwork> net_;
  std::vector<double> weights_;
  std::shared_ptr<const ContractionHierarchy> ch_;
  AlternativeOptions options_;
  ContractionHierarchy::Query query_;   // candidate enumeration run
  ContractionHierarchy::Query tquery_;  // exact T-test sub-queries
};

}  // namespace altroute
