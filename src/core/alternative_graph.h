// Alternative route graphs (Bader et al. [4] — the paper's source for the
// penalty factor 1.4): instead of judging alternatives one by one, overlay a
// route set into a single subgraph and measure it as a whole. The metrics
// here follow [4]: total distance (unique road surface relative to the
// optimum), average distance (mean route stretch), and decision points
// (nodes where the alternative graph forks, i.e. real choices the driver
// gets).
#pragma once

#include <span>
#include <vector>

#include "core/path.h"

namespace altroute {

/// The overlay of a route set.
struct AlternativeGraph {
  /// Distinct street segments used by at least one route (an edge and its
  /// reverse twin count once).
  size_t num_unique_segments = 0;
  /// Nodes incident to the graph.
  size_t num_nodes = 0;
  /// Nodes where a driver following the graph has a genuine choice
  /// (more than one distinct outgoing segment within the graph).
  size_t num_decision_nodes = 0;
  /// Sum of unique segment lengths in meters.
  double total_length_m = 0.0;
  /// total_length_m / length of the shortest route in the set: how much
  /// extra road surface the alternatives add ("totalDistance" of [4]).
  double total_distance_ratio = 1.0;
  /// Mean over routes of route length / shortest route length
  /// ("averageDistance" of [4]).
  double average_distance_ratio = 1.0;
};

/// Builds the overlay metrics for a route set (routes[0] is treated as the
/// reference/optimal route, matching AlternativeSet conventions). An empty
/// set yields a default-constructed result.
AlternativeGraph BuildAlternativeGraph(const RoadNetwork& net,
                                       std::span<const Path> routes);

}  // namespace altroute
