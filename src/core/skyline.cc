#include "core/skyline.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

SkylineGenerator::SkylineGenerator(std::shared_ptr<const RoadNetwork> net,
                                   std::vector<double> weights,
                                   const AlternativeOptions& options)
    : net_(std::move(net)),
      weights_(std::move(weights)),
      lengths_(net_->lengths().begin(), net_->lengths().end()),
      options_(options),
      search_(*net_) {
  ALT_CHECK(weights_.size() == net_->num_edges())
      << "weight vector size mismatch";
  // Zero-length edges would make the secondary criterion non-positive for
  // the label-setting search; clamp to a centimeter.
  for (double& len : lengths_) len = std::max(len, 0.01);
}

Result<AlternativeSet> SkylineGenerator::Generate(NodeId source,
                                                  NodeId target,
                                                  obs::SearchStats* stats,
                                                  CancellationToken* cancel) {
  // The label-setting Pareto search is monolithic: cancellation mid-front
  // would not leave even the fastest path, so check once up front and once
  // after; the front itself is bounded by cost1_bound_factor.
  if (cancel != nullptr && cancel->StopNow()) {
    return Status::DeadlineExceeded("skyline search cancelled");
  }
  BiCriteriaOptions search_options;
  search_options.cost1_bound_factor = options_.stretch_bound;
  ALTROUTE_ASSIGN_OR_RETURN(
      std::vector<ParetoPath> front,
      search_.ParetoPaths(source, target, weights_, lengths_, search_options));

  AlternativeSet out;
  if (cancel != nullptr && cancel->StopNow()) {
    out.completion = Status::DeadlineExceeded("skyline selection cut short");
  }
  // front is ordered by ascending cost1 = travel time; front[0] is fastest.
  out.optimal_cost = front.front().cost1;
  const double cost_limit = options_.stretch_bound * out.optimal_cost;

  std::vector<Path> candidates;
  for (ParetoPath& pp : front) {
    if (pp.cost1 > cost_limit + 1e-9) break;
    auto path_or =
        MakePath(*net_, source, target, std::move(pp.edges), weights_);
    if (!path_or.ok()) {
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }
    if (!IsLoopless(*net_, *path_or)) {
      if (stats != nullptr) ++stats->paths_rejected_filter;
      continue;
    }
    if (stats != nullptr) ++stats->paths_generated;
    candidates.push_back(std::move(path_or).ValueOrDie());
  }
  if (candidates.empty()) return Status::NotFound("no route found");

  // Greedy diverse subset: always keep the fastest, then repeatedly add the
  // candidate most dissimilar to the kept set (skyline fronts contain many
  // near-identical tradeoff points; raw truncation would return duplicates).
  out.routes.push_back(candidates.front());
  std::vector<bool> used(candidates.size(), false);
  used[0] = true;
  while (static_cast<int>(out.routes.size()) < options_.max_routes) {
    double best_dis = -1.0;
    size_t best_idx = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const double dis = DissimilarityToSet(*net_, candidates[i], out.routes);
      if (dis > best_dis) {
        best_dis = dis;
        best_idx = i;
      }
    }
    if (best_dis < 0.0) break;  // exhausted
    used[best_idx] = true;
    // Avoid returning exact duplicates (fully dominated tradeoffs differ in
    // cost but may reuse the same street sequence after loop removal).
    if (best_dis == 0.0 &&
        std::any_of(out.routes.begin(), out.routes.end(), [&](const Path& p) {
          return SameEdges(p, candidates[best_idx]);
        })) {
      continue;
    }
    out.routes.push_back(candidates[best_idx]);
  }
  return out;
}

}  // namespace altroute
