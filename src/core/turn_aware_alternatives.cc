#include "core/turn_aware_alternatives.h"

#include <unordered_set>

#include "core/dissimilarity.h"
#include "core/penalty.h"
#include "core/plateau.h"
#include "graph/graph_builder.h"

namespace altroute {

namespace {

/// Cost of the virtual arrival arcs: must be positive (builder invariant)
/// yet negligible against any real travel time.
constexpr double kEpsilonArcSeconds = 1e-3;

uint64_t RestrictionKey(EdgeId from, EdgeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

Result<TurnExpandedNetwork> TurnExpandedNetwork::Build(
    const RoadNetwork& net, const TurnCostModel& model,
    std::span<const TurnRestriction> restrictions) {
  std::unordered_set<uint64_t> banned;
  for (const TurnRestriction& r : restrictions) {
    if (r.from_edge >= net.num_edges() || r.to_edge >= net.num_edges()) {
      return Status::InvalidArgument("turn restriction edge out of range");
    }
    if (net.head(r.from_edge) != net.tail(r.to_edge)) {
      return Status::InvalidArgument(
          "turn restriction edges do not share a via node");
    }
    banned.insert(RestrictionKey(r.from_edge, r.to_edge));
  }

  TurnExpandedNetwork out;
  GraphBuilder builder(net.name() + "-turn-expanded");

  // Gateways.
  out.out_gateway.resize(net.num_nodes());
  out.in_gateway.resize(net.num_nodes());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    out.out_gateway[v] = builder.AddNode(net.coord(v));
    out.in_gateway[v] = builder.AddNode(net.coord(v));
  }
  // Edge states at segment midpoints.
  std::vector<NodeId> state(net.num_edges());
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    const LatLng& a = net.coord(net.tail(e));
    const LatLng& b = net.coord(net.head(e));
    state[e] = builder.AddNode(
        LatLng((a.lat + b.lat) / 2.0, (a.lng + b.lng) / 2.0));
  }

  auto maneuver_penalty = [&](EdgeId from, EdgeId to) -> double {
    if (banned.count(RestrictionKey(from, to))) return kInfCost;
    const bool u_turn =
        net.tail(from) == net.head(to) && net.head(from) == net.tail(to);
    if (u_turn) {
      return model.ban_u_turns ? kInfCost : model.u_turn_penalty_s;
    }
    const double angle = TurnAngleDegrees(net.coord(net.tail(from)),
                                          net.coord(net.head(from)),
                                          net.coord(net.head(to)));
    if (angle > model.sharp_threshold_deg) return model.sharp_turn_penalty_s;
    if (angle > model.turn_threshold_deg) return model.turn_penalty_s;
    return 0.0;
  };

  // The builder assigns edge ids by (tail, head) CSR order, not insertion
  // order, so original_edge must be filled after Build() via lookups. Track
  // what each (expanded tail, expanded head) pair means.
  struct PendingMeaning {
    NodeId tail;
    NodeId head;
    EdgeId original;
  };
  std::vector<PendingMeaning> meanings;

  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    // Departure: gateway_out(tail) -> state(e).
    builder.AddEdge(out.out_gateway[net.tail(e)], state[e], net.length_m(e),
                    net.travel_time_s(e), net.road_class(e));
    meanings.push_back({out.out_gateway[net.tail(e)], state[e], e});
    // Arrival: state(e) -> gateway_in(head).
    builder.AddEdge(state[e], out.in_gateway[net.head(e)], 0.0,
                    kEpsilonArcSeconds, net.road_class(e));
    meanings.push_back({state[e], out.in_gateway[net.head(e)], kInvalidEdge});
    // Maneuvers.
    for (EdgeId next : net.OutEdges(net.head(e))) {
      const double penalty = maneuver_penalty(e, next);
      if (penalty >= kInfCost) continue;
      builder.AddEdge(state[e], state[next], net.length_m(next),
                      net.travel_time_s(next) + penalty,
                      net.road_class(next));
      meanings.push_back({state[e], state[next], next});
    }
  }

  ALTROUTE_ASSIGN_OR_RETURN(out.expanded, builder.Build());

  out.original_edge.assign(out.expanded->num_edges(), kInvalidEdge);
  for (const PendingMeaning& m : meanings) {
    const EdgeId expanded_edge = out.expanded->FindEdge(m.tail, m.head);
    if (expanded_edge == kInvalidEdge) {
      return Status::Internal("expanded edge vanished during build");
    }
    out.original_edge[expanded_edge] = m.original;
  }
  return out;
}

Result<std::unique_ptr<TurnAwareAlternatives>> TurnAwareAlternatives::Create(
    std::shared_ptr<const RoadNetwork> net, TurnAwareBase base,
    const TurnCostModel& model, std::span<const TurnRestriction> restrictions,
    const AlternativeOptions& options) {
  if (net == nullptr) return Status::InvalidArgument("null network");
  auto generator =
      std::unique_ptr<TurnAwareAlternatives>(new TurnAwareAlternatives());
  generator->net_ = net;
  ALTROUTE_ASSIGN_OR_RETURN(generator->expansion_,
                            TurnExpandedNetwork::Build(*net, model,
                                                       restrictions));
  const auto& expanded = generator->expansion_.expanded;
  std::vector<double> weights(expanded->travel_times().begin(),
                              expanded->travel_times().end());
  switch (base) {
    case TurnAwareBase::kPlateaus:
      generator->inner_ = std::make_unique<PlateauGenerator>(
          expanded, std::move(weights), options);
      generator->name_ = "turn-aware-plateau";
      break;
    case TurnAwareBase::kDissimilarity:
      generator->inner_ = std::make_unique<DissimilarityGenerator>(
          expanded, std::move(weights), options);
      generator->name_ = "turn-aware-dissimilarity";
      break;
    case TurnAwareBase::kPenalty:
      generator->inner_ = std::make_unique<PenaltyGenerator>(
          expanded, std::move(weights), options);
      generator->name_ = "turn-aware-penalty";
      break;
  }
  return generator;
}

const std::vector<double>& TurnAwareAlternatives::weights() const {
  return inner_->weights();
}

Result<AlternativeSet> TurnAwareAlternatives::Generate(NodeId source,
                                                       NodeId target,
                                                       obs::SearchStats* stats,
                                                       CancellationToken* cancel) {
  if (source >= net_->num_nodes() || target >= net_->num_nodes()) {
    return Status::InvalidArgument("endpoint out of range");
  }
  ALTROUTE_ASSIGN_OR_RETURN(
      AlternativeSet expanded_set,
      inner_->Generate(expansion_.out_gateway[source],
                       expansion_.in_gateway[target], stats, cancel));

  AlternativeSet out;
  out.optimal_cost = expanded_set.optimal_cost;
  out.work_settled_nodes = expanded_set.work_settled_nodes;
  out.completion = expanded_set.completion;
  for (const Path& expanded_path : expanded_set.routes) {
    Path path;
    path.source = source;
    path.target = target;
    path.cost = expanded_path.cost;  // includes maneuver penalties
    for (EdgeId expanded_edge : expanded_path.edges) {
      const EdgeId original = expansion_.original_edge[expanded_edge];
      if (original == kInvalidEdge) continue;  // virtual arrival arc
      path.edges.push_back(original);
      path.length_m += net_->length_m(original);
      path.travel_time_s += net_->travel_time_s(original);
    }
    // Sanity: mapped edges must form a contiguous original path.
    NodeId cur = source;
    bool valid = true;
    for (EdgeId e : path.edges) {
      if (net_->tail(e) != cur) {
        valid = false;
        break;
      }
      cur = net_->head(e);
    }
    if (!valid || cur != target) {
      return Status::Internal("expanded route did not map to a valid path");
    }
    out.routes.push_back(std::move(path));
  }
  return out;
}

}  // namespace altroute
