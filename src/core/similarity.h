// Path similarity / dissimilarity measures (paper Sec. 2.3). Overlap is
// measured by shared edge *length* in meters, following the KSPwLO line of
// work [9, 10]: two routes that share a long arterial stretch are similar
// even if their edge counts differ.
#pragma once

#include <span>
#include <vector>

#include "core/path.h"

namespace altroute {

/// Which normalisation the similarity ratio uses.
enum class SimilarityMeasure {
  /// shared_length / length(shorter path) — conservative: a short path fully
  /// contained in a long one counts as identical.
  kOverlapOverShorter,
  /// shared_length / length(union) — Jaccard by length.
  kJaccardByLength,
  /// shared_length / length(candidate) — the KSPwLO OVL(p, p') ratio used by
  /// the threshold test "add p iff OVL(p, p') <= theta for all accepted p'".
  kOverlapOverCandidate,
};

/// Sum of lengths (meters) of edges present in both paths. An edge and its
/// reverse twin count as shared road surface (the same physical street).
double SharedLengthMeters(const RoadNetwork& net, const Path& a, const Path& b);

/// Similarity in [0, 1] under the chosen measure; 1 means identical.
/// For kOverlapOverCandidate, `a` is the candidate being tested.
double Similarity(const RoadNetwork& net, const Path& a, const Path& b,
                  SimilarityMeasure measure = SimilarityMeasure::kOverlapOverCandidate);

/// Dissimilarity dis(p, P) = min over q in P of (1 - Similarity(p, q)).
/// Empty set yields 1.0 (a lone path is maximally dissimilar).
double DissimilarityToSet(const RoadNetwork& net, const Path& candidate,
                          std::span<const Path> accepted,
                          SimilarityMeasure measure =
                              SimilarityMeasure::kOverlapOverCandidate);

}  // namespace altroute
