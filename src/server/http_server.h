// A concurrent blocking HTTP/1.1 server for the web demo backend (paper
// Sec. 3 / Fig. 2) grown toward production traffic: one accept thread feeds
// a bounded connection queue drained by N worker threads, so slow or idle
// clients cannot stall other users. Per-socket receive/send timeouts bound
// how long a worker can be held by one connection, writes use MSG_NOSIGNAL
// (a client hanging up mid-response must never SIGPIPE the process), a full
// queue sheds load with an immediate 503, and Stop() drains gracefully:
// queued and in-flight requests finish, new connections are rejected.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace altroute {

struct HttpRequest {
  std::string method;  // "GET", "POST"
  /// Raw (NOT percent-decoded) path without the query string. Routes are
  /// matched on the raw bytes — "/rou%74e" does not alias "/route" — which
  /// also keeps the path metric label's cardinality bounded.
  std::string path;
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;  // lowercased keys
  std::string body;
  /// Wall deadline for the whole request, stamped when the connection was
  /// accepted (queue wait counts against it). Infinite when the server runs
  /// without --request-timeout-ms. Handlers thread it into their work.
  Deadline deadline;
  /// Server-assigned id ("r" + accept sequence number), stamped when the
  /// connection was accepted. Threaded through logs, trace output, error
  /// bodies and slow-query records, and echoed as X-Request-Id, so one slow
  /// request can be followed across every surface.
  std::string request_id;
  /// Seconds this request waited in the connection queue before a worker
  /// picked it up. Handlers record it as the "queue_wait" phase.
  double queue_wait_s = 0.0;
};

/// The HTTP status a Status-valued handler failure maps to: 422 for
/// semantically invalid input (bad coordinates, snap failure), 404 NotFound,
/// 504 DeadlineExceeded, 501 Unimplemented, 503 FailedPrecondition, 500 for
/// internal classes (IOError/Corruption/Internal).
int HttpStatusForStatusCode(StatusCode code);

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Echoed as the X-Request-Id response header when non-empty. The server
  /// fills it from HttpRequest::request_id after the handler runs.
  std::string request_id;
  /// Retry-After header value in seconds. Every 503 carries the header
  /// (defaulting to 1s when this is 0) so shed and not-ready responses
  /// always tell clients when to come back; any other status emits it only
  /// when a handler sets this > 0.
  int retry_after_s = 0;

  static HttpResponse Json(std::string json) {
    HttpResponse r;
    r.body = std::move(json);
    return r;
  }
  /// A structured error body:
  ///   {"error": {"code": "...", "message": "...", "request_id": "..."}}
  /// The code string is the snake_case error class of the HTTP status; the
  /// request_id member is present only when one was assigned.
  static HttpResponse Error(int status, const std::string& message,
                            const std::string& request_id = "");
  /// Maps a non-OK Status to Error(HttpStatusForStatusCode(code), message).
  static HttpResponse FromStatus(const Status& status,
                                 const std::string& request_id = "");
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Worker threads handling requests; 0 means hardware_concurrency.
  int num_threads = 0;
  /// Accepted connections waiting for a worker beyond those in flight;
  /// when full, new connections are shed with an immediate 503.
  size_t queue_capacity = 128;
  /// SO_RCVTIMEO / SO_SNDTIMEO per accepted socket; <= 0 disables.
  int recv_timeout_ms = 5000;
  int send_timeout_ms = 5000;
  /// Requests whose headers exceed this are rejected with 431.
  size_t max_header_bytes = 1 << 20;
  /// Content-Length values above this are treated as 0 (body ignored).
  size_t max_body_bytes = 1 << 20;
  /// Wall budget per request, measured from accept (time spent waiting in
  /// the connection queue counts). Handlers receive the resulting deadline
  /// via HttpRequest::deadline; a request already expired when a worker
  /// picks it up is answered 504 without dispatching (and a request whose
  /// budget is already spent at dequeue is dropped with a 504 before its
  /// bytes are even read). <= 0 disables.
  int request_timeout_ms = 0;
  /// CoDel-style adaptive admission: when the queue wait observed at
  /// dequeue stays above this target continuously for
  /// queue_delay_interval_ms, new connections are shed with 503 +
  /// Retry-After BEFORE the hard queue_capacity bound is reached — a
  /// standing queue is paid by every request behind it, so it is cheaper to
  /// reject at the door than to serve everyone late. <= 0 disables.
  int queue_target_delay_ms = 0;
  /// How long the observed queue wait must stay above the target before
  /// shedding starts.
  int queue_delay_interval_ms = 100;
  /// When the accept thread is about to shed a connection, it waits up to
  /// this long for the first bytes so a liveness probe ("GET /healthz ")
  /// can still be recognised and answered inline. <= 0 disables the wait
  /// (probes whose bytes are still in flight get shed like anyone else).
  int healthz_poll_ms = 20;
};

class HttpServer {
 public:
  HttpServer() = default;
  explicit HttpServer(HttpServerOptions options) : options_(options) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact raw path (any method). Must be called
  /// before Start(). Handlers run concurrently on worker threads and must be
  /// thread-safe. The "/healthz" handler is special: plain GET probes for it
  /// are answered directly on the accept thread — bypassing the queue and
  /// every shed path, so liveness stays observable while the worker pool is
  /// saturated — and must therefore be fast and non-blocking.
  void Route(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), spawns the worker pool and
  /// starts the accept loop. Also ignores SIGPIPE process-wide as a
  /// belt-and-braces fallback to MSG_NOSIGNAL.
  Status Start(uint16_t port);

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Number of worker threads (valid after Start()).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Graceful drain: stops accepting, finishes queued and in-flight
  /// requests, joins all threads. Idempotent; the server can Start() again.
  void Stop();

  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd, const Deadline& deadline,
                        const std::string& request_id, double queue_wait_s);
  /// True when the connection's first bytes spell a plain "GET /healthz "
  /// request. Peeks without consuming; with `poll_ms` > 0, waits up to that
  /// long for the bytes to arrive first.
  static bool PeekIsHealthz(int fd, int poll_ms);
  /// Runs the registered /healthz handler on the calling (accept) thread.
  void ServeHealthzInline(int fd, uint64_t request_id);
  /// Updates the CoDel state with a queue wait observed at dequeue.
  void ObserveQueueWait(double queue_wait_s);
  /// True when the observed queue delay has been above target long enough
  /// that new connections should be shed.
  bool QueueDelayExceeded() const;
  /// Writes the full payload with MSG_NOSIGNAL; false on error (EPIPE etc.).
  static bool SendAll(int fd, std::string_view payload);
  /// Serialises `resp`, sends it, and counts it under
  /// altroute_http_requests_total{path=`path_label`,code=...}. `path_label`
  /// is drawn from a bounded set: registered routes plus "unmatched",
  /// "malformed" and "shed".
  void SendResponse(int fd, const HttpResponse& resp,
                    const std::string& path_label);

  HttpServerOptions options_;
  /// Not guarded: Route() CHECK-fails after Start(), so the map is frozen
  /// before the accept/worker threads exist and is immutable while they run.
  std::map<std::string, HttpHandler> routes_;
  // Written by Start()/Stop(), read concurrently by AcceptLoop's accept().
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// An accepted connection plus its request deadline (stamped at accept so
  /// queue wait burns budget), its id, and its accept timestamp (so the
  /// worker can attribute queue wait as a request phase).
  struct QueuedConnection {
    int fd;
    Deadline deadline;
    uint64_t request_id;
    std::chrono::steady_clock::time_point accepted_at;
  };

  /// Monotonic request-id source; ids are assigned at accept, before
  /// queueing, so even shed connections are identifiable in logs.
  std::atomic<uint64_t> next_request_id_{0};

  /// CoDel state: steady-clock ns timestamp of when the observed queue wait
  /// first went above target (0 = currently below target). Written by
  /// workers at dequeue, read by the accept thread.
  std::atomic<int64_t> queue_above_target_since_ns_{0};

  Mutex mu_;
  CondVar queue_cv_;
  // accepted fds awaiting a worker
  std::deque<QueuedConnection> queue_ ALT_GUARDED_BY(mu_);
  // Stop() begun: shed new connections with 503
  bool draining_ ALT_GUARDED_BY(mu_) = false;
  // queue is final: drain it, then exit
  bool workers_exit_ ALT_GUARDED_BY(mu_) = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
};

}  // namespace altroute
