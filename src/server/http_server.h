// A minimal blocking HTTP/1.1 server sufficient for the web demo (paper
// Sec. 3 / Fig. 2): routed GET/POST handlers, query-string parsing, JSON
// responses. One accept loop on a background thread; requests are handled
// sequentially (the demo serialises routing queries anyway).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "util/result.h"

namespace altroute {

struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string path;    // percent-decoded, without query
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;  // lowercased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(std::string json) {
    HttpResponse r;
    r.body = std::move(json);
    return r;
  }
  static HttpResponse Error(int status, const std::string& message);
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path (any method). Must be called
  /// before Start().
  void Route(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port);

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::map<std::string, HttpHandler> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace altroute
