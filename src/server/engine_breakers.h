// Per-(city, engine) circuit breakers for the serving path. One
// EngineBreakerSet guards one city's engine suite and is shared by every
// query-processor context over that city (the breakers are the cross-worker
// shared state: engine health is a property of the city's data plane, not of
// one worker). QueryProcessor::Process consults the breaker before running
// each engine: an open breaker skips the engine immediately — its budget
// slice flows to the engines still running — and the approach ships with
// status "breaker_open" in the degraded response.
//
// Every state machine is observable: altroute_breaker_state{city,engine}
// (0 closed, 1 open, 2 half_open) and
// altroute_breaker_transitions_total{city,engine,to}.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/circuit_breaker.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace altroute {

class EngineBreakerSet {
 public:
  /// One breaker per engine name, created on first use, all sharing
  /// `options`. `clock` is handed to every breaker (tests inject a fake
  /// clock to drive cooldowns deterministically; null = steady clock).
  EngineBreakerSet(std::string city, CircuitBreakerOptions options,
                   CircuitBreaker::ClockFn clock = nullptr);

  EngineBreakerSet(const EngineBreakerSet&) = delete;
  EngineBreakerSet& operator=(const EngineBreakerSet&) = delete;

  /// The breaker guarding `engine` in this city; created closed on first
  /// use. The reference stays valid for the set's lifetime.
  CircuitBreaker& ForEngine(std::string_view engine);

  const std::string& city() const { return city_; }

  /// Whether a failed engine run with this status should count against the
  /// breaker. Client/data outcomes (no route between the snapped vertices,
  /// invalid input) say nothing about engine health and never trip it;
  /// deadline exhaustion, internal errors and injected faults do.
  static bool CountsAsFailure(const Status& status);

 private:
  const std::string city_;
  const CircuitBreakerOptions options_;
  const CircuitBreaker::ClockFn clock_;
  Mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>, std::less<>> breakers_
      ALT_GUARDED_BY(mu_);  // values are never erased
};

}  // namespace altroute
