// GeoJSON (RFC 7946) serialisation of routes and route sets: the interop
// format for dropping altroute output onto any web map (Leaflet, Mapbox,
// geojson.io) — the modern equivalent of the demo's Google-Maps-API
// plotting (paper Sec. 3).
#pragma once

#include <string>

#include "core/alternative_generator.h"
#include "core/path.h"

namespace altroute {

/// One route as a GeoJSON Feature with a LineString geometry and
/// properties {travel_time_min, length_km, rank}.
std::string RouteToGeoJson(const RoadNetwork& net, const Path& path,
                           int rank = 0);

/// An alternative set as a FeatureCollection; properties carry the masked
/// label and per-route rank so a client can colour them like the demo.
std::string AlternativeSetToGeoJson(const RoadNetwork& net,
                                    const AlternativeSet& set,
                                    char masked_label = '?');

}  // namespace altroute
