#include "server/slow_query_log.h"

#include <algorithm>
#include <utility>

#include "server/json.h"
#include "util/json_parse.h"
#include "util/string_util.h"

namespace altroute {

namespace {

void WriteStats(JsonWriter& w, const obs::SearchStats& stats) {
  w.BeginObject();
  w.Key("nodes_settled").Int(static_cast<int64_t>(stats.nodes_settled));
  w.Key("edges_relaxed").Int(static_cast<int64_t>(stats.edges_relaxed));
  w.Key("heap_pushes").Int(static_cast<int64_t>(stats.heap_pushes));
  w.Key("heap_pops").Int(static_cast<int64_t>(stats.heap_pops));
  w.Key("paths_generated").Int(static_cast<int64_t>(stats.paths_generated));
  w.Key("paths_rejected")
      .Int(static_cast<int64_t>(stats.paths_rejected_total()));
  w.Key("iterations").Int(static_cast<int64_t>(stats.iterations));
  w.EndObject();
}

uint64_t StatsField(const JsonValue& object, const char* key) {
  const double value = object.GetNumber(key, 0.0);
  return value > 0.0 ? static_cast<uint64_t>(value) : 0;
}

}  // namespace

std::string SlowQueryRecordToJsonLine(const SlowQueryRecord& record) {
  JsonWriter w;
  w.BeginObject();
  w.Key("request_id").String(record.request_id);
  w.Key("city").String(record.city);
  w.Key("params").BeginObject();
  for (const auto& [key, value] : record.params) {
    w.Key(key).String(value);
  }
  w.EndObject();
  w.Key("total_ms").Number(record.total_ms);
  // An array, not an object: recorded order is part of the data (it is the
  // request's execution order) and JSON object members have no order.
  w.Key("phases").BeginArray();
  for (const auto& [name, ms] : record.phases) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("ms").Number(ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("engines").BeginArray();
  for (const SlowQueryEngine& engine : record.engines) {
    w.BeginObject();
    w.Key("name").String(engine.name);
    w.Key("status").String(engine.status);
    w.Key("elapsed_ms").Number(engine.elapsed_ms);
    w.Key("stats");
    WriteStats(w, engine.stats);
    w.EndObject();
  }
  w.EndArray();
  w.Key("budget_remaining_ms").Number(record.budget_remaining_ms);
  w.Key("degraded").Bool(record.degraded);
  w.EndObject();
  return w.TakeString();
}

Result<SlowQueryRecord> ParseSlowQueryRecordJsonLine(std::string_view line) {
  ALTROUTE_ASSIGN_OR_RETURN(JsonValue root, ParseJson(Trim(line)));
  if (!root.is_object()) {
    return Status::InvalidArgument("slow-query record must be a JSON object");
  }
  SlowQueryRecord record;
  record.request_id = root.GetString("request_id", "");
  record.city = root.GetString("city", "");
  if (record.request_id.empty() && record.city.empty()) {
    return Status::InvalidArgument("not a slow-query record");
  }
  if (const JsonValue* params = root.Find("params");
      params != nullptr && params->is_object()) {
    for (const auto& [key, value] : params->AsObject()) {
      if (value.is_string()) record.params[key] = value.AsString();
    }
  }
  record.total_ms = root.GetNumber("total_ms", 0.0);
  if (const JsonValue* phases = root.Find("phases");
      phases != nullptr && phases->is_array()) {
    for (const JsonValue& item : phases->AsArray()) {
      if (!item.is_object()) continue;
      const std::string name = item.GetString("name", "");
      if (!name.empty()) {
        record.phases.emplace_back(name, item.GetNumber("ms", 0.0));
      }
    }
  }
  if (const JsonValue* engines = root.Find("engines");
      engines != nullptr && engines->is_array()) {
    for (const JsonValue& item : engines->AsArray()) {
      if (!item.is_object()) {
        return Status::InvalidArgument("slow-query engine must be an object");
      }
      SlowQueryEngine engine;
      engine.name = item.GetString("name", "");
      engine.status = item.GetString("status", "ok");
      engine.elapsed_ms = item.GetNumber("elapsed_ms", 0.0);
      if (const JsonValue* stats = item.Find("stats");
          stats != nullptr && stats->is_object()) {
        engine.stats.nodes_settled = StatsField(*stats, "nodes_settled");
        engine.stats.edges_relaxed = StatsField(*stats, "edges_relaxed");
        engine.stats.heap_pushes = StatsField(*stats, "heap_pushes");
        engine.stats.heap_pops = StatsField(*stats, "heap_pops");
        engine.stats.paths_generated = StatsField(*stats, "paths_generated");
        // The writer flattens the three rejection counters into one total;
        // replay stores it in the filter bucket so paths_rejected_total()
        // round-trips.
        engine.stats.paths_rejected_filter =
            StatsField(*stats, "paths_rejected");
        engine.stats.iterations = StatsField(*stats, "iterations");
      }
      record.engines.push_back(std::move(engine));
    }
  }
  record.budget_remaining_ms = root.GetNumber("budget_remaining_ms", -1.0);
  record.degraded = root.GetBool("degraded", false);
  return record;
}

Status SlowQueryLog::AttachFile(const std::string& path) {
  MutexLock lock(&mu_);
  corrupt_lines_ = 0;
  {
    // Replay what the previous process persisted so /debug/slow survives a
    // restart. Missing file: first run. Unparseable line: count and skip —
    // a torn tail from a crash mid-append must never block startup.
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (Trim(line).empty()) continue;
      auto parsed = ParseSlowQueryRecordJsonLine(line);
      if (parsed.ok()) {
        InsertWorstLocked(*parsed);
      } else {
        ++corrupt_lines_;
      }
    }
  }
  // Heal a torn final line (crash between the record and its newline) so the
  // next append starts a fresh line instead of corrupting two records.
  bool needs_newline = false;
  {
    std::ifstream tail(path, std::ios::binary);
    if (tail.is_open() && tail.seekg(-1, std::ios::end)) {
      char last = '\n';
      if (tail.get(last)) needs_newline = last != '\n';
    }
  }
  log_.open(path, std::ios::out | std::ios::app);
  if (!log_.is_open()) {
    return Status::IOError("cannot open slow-query log for append: " + path);
  }
  if (needs_newline) {
    log_ << '\n';
    log_.flush();
  }
  return Status::OK();
}

size_t SlowQueryLog::corrupt_lines_recovered() const {
  MutexLock lock(&mu_);
  return corrupt_lines_;
}

void SlowQueryLog::InsertWorstLocked(const SlowQueryRecord& record) {
  if (options_.worst_capacity == 0) return;
  // Sorted insert, slowest first; ties keep the earlier record (stable for
  // the eviction tests and for operators re-reading the page).
  auto it = std::upper_bound(worst_.begin(), worst_.end(), record,
                             [](const SlowQueryRecord& a,
                                const SlowQueryRecord& b) {
                               return a.total_ms > b.total_ms;
                             });
  worst_.insert(it, record);
  if (worst_.size() > options_.worst_capacity) worst_.pop_back();
}

bool SlowQueryLog::Add(const SlowQueryRecord& record) {
  MutexLock lock(&mu_);
  recent_.push_back(record);
  while (recent_.size() > options_.recent_capacity) recent_.pop_front();
  InsertWorstLocked(record);
  // Strictly greater: a request taking exactly threshold_ms is within
  // budget, not an offender.
  const bool offender =
      options_.threshold_ms > 0.0 && record.total_ms > options_.threshold_ms;
  if (!offender) return false;
  ++offenders_;
  if (log_.is_open()) {
    // Durability before visibility, as in RatingStore: flush so a crash can
    // lose at most the in-flight record.
    log_ << SlowQueryRecordToJsonLine(record) << '\n';
    log_.flush();
    if (!log_.good()) log_.clear();  // degrade to in-memory only
  }
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Recent() const {
  MutexLock lock(&mu_);
  return std::vector<SlowQueryRecord>(recent_.rbegin(), recent_.rend());
}

std::vector<SlowQueryRecord> SlowQueryLog::Worst() const {
  MutexLock lock(&mu_);
  return worst_;
}

uint64_t SlowQueryLog::offenders_total() const {
  MutexLock lock(&mu_);
  return offenders_;
}

}  // namespace altroute
