// Per-worker query contexts for concurrent serving. QueryProcessor and the
// engines in EngineSuite hold mutable search state and are not thread-safe,
// but alternative-route generation is embarrassingly parallel across queries
// (independent per-query searches, cf. Dees et al.), so the pool owns one
// processor per HTTP worker: engines are rebuilt per context while the
// immutable RoadNetwork, the free-flow display weights and the snapping
// SpatialIndex are shared via shared_ptr. Handlers check a context out for
// the duration of one request (RAII Lease) and return it on destruction.
#pragma once

#include <memory>
#include <vector>

#include "server/query_processor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace altroute {

class QueryProcessorPool {
 public:
  /// Builds `num_contexts` processors over one shared network: the spatial
  /// index and display weights are built once; each context gets its own
  /// engine suite (per-worker mutable state). A non-null `ch` (built over
  /// the same network and its free-flow weights) is shared by every context
  /// and selects the CH-backed Plateau/Penalty engines — see
  /// EngineSuite::MakePaperSuite. A non-null `breakers` set is attached to
  /// every context (breakers are the deliberately shared cross-worker state:
  /// engine health is a property of the city's data plane); null disables
  /// breaker checks.
  static Result<QueryProcessorPool> Create(
      std::shared_ptr<const RoadNetwork> net, size_t num_contexts,
      const AlternativeOptions& options = {}, int commercial_hour = 3,
      std::shared_ptr<const ContractionHierarchy> ch = nullptr,
      std::shared_ptr<EngineBreakerSet> breakers = nullptr);

  /// Adopts prebuilt processors (e.g. a single-context pool for tests or
  /// the serial CLI paths). Must be non-empty and non-null.
  explicit QueryProcessorPool(
      std::vector<std::unique_ptr<QueryProcessor>> contexts);

  QueryProcessorPool(QueryProcessorPool&&) = default;
  QueryProcessorPool& operator=(QueryProcessorPool&&) = default;

  /// RAII checkout: the processor is exclusively owned until the lease is
  /// destroyed, then returns to the pool.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), processor_(other.processor_) {
      other.pool_ = nullptr;
      other.processor_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    QueryProcessor* operator->() { return processor_; }
    QueryProcessor& operator*() { return *processor_; }

   private:
    friend class QueryProcessorPool;
    Lease(QueryProcessorPool* pool, QueryProcessor* processor)
        : pool_(pool), processor_(processor) {}

    QueryProcessorPool* pool_;
    QueryProcessor* processor_;
  };

  /// Checks a free context out, blocking until one is available. With one
  /// context per HTTP worker this never blocks in the steady state.
  Lease Acquire();

  size_t size() const { return contexts_.size(); }
  const RoadNetwork& network() const;

 private:
  void Release(QueryProcessor* processor);

  /// The checkout gate lives behind one unique_ptr so the pool stays movable
  /// (Mutex and CondVar are not). Heap placement also keeps the guarded
  /// free list and its mutex at a stable address across moves, which lets
  /// the analysis track `gate_->mu` / `gate_->free_list` as one consistent
  /// capability expression.
  struct Gate {
    Mutex mu;
    CondVar cv;
    std::vector<QueryProcessor*> free_list ALT_GUARDED_BY(mu);
  };

  std::vector<std::unique_ptr<QueryProcessor>> contexts_;
  std::unique_ptr<Gate> gate_ = std::make_unique<Gate>();
};

}  // namespace altroute
