#include "server/query_processor_pool.h"

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace altroute {

namespace {

obs::Gauge& ContextsInUseGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "altroute_query_contexts_in_use",
      "Query-processor contexts currently checked out by workers.");
  return g;
}

}  // namespace

Result<QueryProcessorPool> QueryProcessorPool::Create(
    std::shared_ptr<const RoadNetwork> net, size_t num_contexts,
    const AlternativeOptions& options, int commercial_hour,
    std::shared_ptr<const ContractionHierarchy> ch,
    std::shared_ptr<EngineBreakerSet> breakers) {
  if (net == nullptr) return Status::InvalidArgument("null network");
  if (num_contexts == 0) {
    return Status::InvalidArgument("pool needs at least one context");
  }
  // Shared immutable state: one snapping index, one display-weight vector
  // and (when CH-backed) one hierarchy serve every context; each context's
  // engines keep only their own mutable search workspaces.
  auto index = std::make_shared<const SpatialIndex>(net->coords());
  std::shared_ptr<const std::vector<double>> display_weights;

  std::vector<std::unique_ptr<QueryProcessor>> contexts;
  contexts.reserve(num_contexts);
  for (size_t i = 0; i < num_contexts; ++i) {
    ALTROUTE_ASSIGN_OR_RETURN(
        EngineSuite suite,
        EngineSuite::MakePaperSuite(net, options, commercial_hour,
                                    display_weights, ch));
    if (display_weights == nullptr) {
      display_weights = suite.display_weights_ptr();
    }
    contexts.push_back(
        std::make_unique<QueryProcessor>(std::move(suite), index));
    contexts.back()->set_breakers(breakers);
  }
  return QueryProcessorPool(std::move(contexts));
}

QueryProcessorPool::QueryProcessorPool(
    std::vector<std::unique_ptr<QueryProcessor>> contexts)
    : contexts_(std::move(contexts)) {
  ALT_CHECK(!contexts_.empty()) << "empty processor pool";
  gate_->free_list.reserve(contexts_.size());
  for (const auto& c : contexts_) {
    ALT_CHECK(c != nullptr) << "null processor in pool";
    gate_->free_list.push_back(c.get());
  }
}

QueryProcessorPool::Lease QueryProcessorPool::Acquire() {
  QueryProcessor* p = nullptr;
  {
    MutexLock lock(&gate_->mu);
    while (gate_->free_list.empty()) gate_->cv.Wait(&gate_->mu);
    p = gate_->free_list.back();
    gate_->free_list.pop_back();
  }
  ContextsInUseGauge().Add(1.0);
  return Lease(this, p);
}

void QueryProcessorPool::Release(QueryProcessor* processor) {
  {
    MutexLock lock(&gate_->mu);
    gate_->free_list.push_back(processor);
  }
  ContextsInUseGauge().Add(-1.0);
  gate_->cv.NotifyOne();
}

QueryProcessorPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->Release(processor_);
}

const RoadNetwork& QueryProcessorPool::network() const {
  return contexts_.front()->network();
}

}  // namespace altroute
