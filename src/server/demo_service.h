// DemoService: wires the network manager (per-city query-processor pools)
// and rating store into HTTP routes, forming the complete web demo backend
// of paper Sec. 3 / Figs. 2-3:
//   GET  /              - landing page (instructions, Fig. 2 stand-in)
//   GET  /route         - ?slat=&slng=&tlat=&tlng=[&city=] -> masked A-D sets
//   GET  /directions    - ?slat=&slng=&tlat=&tlng=&label=A..D[&city=]
//   GET  /rate          - ?a=&b=&c=&d=&resident=&comment= -> store a form
//   GET  /stats         - submission count + mean rating per masked label
//   GET  /metrics       - Prometheus text exposition of the process registry
//   GET  /healthz       - liveness: 200 as long as the process serves
//   GET  /readyz        - readiness: 200 iff every city has a valid snapshot
//   GET  /debug/slow    - worst recorded requests with phase breakdowns
//   GET  /debug/requests- most recent requests with phase breakdowns
//   GET  /debug/build   - compiler / build mode / uptime / served cities
//   POST /admin/reload  - [?city=] rebuild+validate+swap snapshot(s); a
//                         failed reload keeps the old snapshot serving
// /route additionally honours &trace=1, appending a "trace" member with the
// query's span tree (wall times + per-engine search statistics) and a
// "phases" member with the request's phase breakdown.
//
// Multi-city: query handlers take an optional `city` parameter. With exactly
// one configured city it may be omitted; with several it is required (400).
// Unknown cities answer 404.
//
// Handlers are thread-safe: each request copies the city's snapshot
// (shared_ptr, so a concurrent reload swap never frees state under an
// in-flight query) and checks a QueryProcessor context out of its pool for
// the duration. RatingStore is internally synchronised.
#pragma once

#include <chrono>
#include <memory>

#include "obs/phase_timer.h"
#include "server/http_server.h"
#include "server/network_manager.h"
#include "server/query_processor.h"
#include "server/query_processor_pool.h"
#include "server/rating_store.h"
#include "server/slow_query_log.h"

namespace altroute {

class DemoService {
 public:
  /// Full data plane: one snapshot (pool + index + weights) per city, hot
  /// reload, readiness. The manager is shared so the CLI can also drive
  /// reloads from signals.
  explicit DemoService(std::shared_ptr<NetworkManager> manager);

  /// Single-city convenience: adopts the pool as the only city, keyed by
  /// the network's name. Reloading it requires a loader (see
  /// NetworkManager::AddCity), so /admin/reload answers 503.
  explicit DemoService(std::unique_ptr<QueryProcessorPool> pool);

  /// Single-context convenience (tests, serial tools): wraps the processor
  /// in a pool of one, so handlers still serialise on it safely.
  explicit DemoService(std::unique_ptr<QueryProcessor> processor);

  /// Registers all demo routes on `server`. The service must outlive it.
  void Install(HttpServer* server);

  RatingStore& ratings() { return ratings_; }
  NetworkManager& manager() { return *manager_; }
  /// Request forensics (--slow-query-ms / --slow-query-log wire up here).
  SlowQueryLog& slow_queries() { return slow_queries_; }

 private:
  /// Picks the city for a query handler: explicit ?city=, or the single
  /// configured city, or an error (400 with several cities, 404 unknown,
  /// 503 when no cities are configured at all).
  Result<std::shared_ptr<const NetworkSnapshot>> ResolveSnapshot(
      const HttpRequest& req) const;

  HttpResponse HandleRoute(const HttpRequest& req);
  HttpResponse HandleDirections(const HttpRequest& req);
  HttpResponse HandleRate(const HttpRequest& req);
  HttpResponse HandleStats(const HttpRequest& req) const;
  HttpResponse HandleIndex(const HttpRequest& req) const;
  HttpResponse HandleMetrics(const HttpRequest& req) const;
  HttpResponse HandleHealthz(const HttpRequest& req) const;
  HttpResponse HandleReadyz(const HttpRequest& req) const;
  HttpResponse HandleReload(const HttpRequest& req);
  HttpResponse HandleDebugSlow(const HttpRequest& req) const;
  HttpResponse HandleDebugRequests(const HttpRequest& req) const;
  HttpResponse HandleDebugBuild(const HttpRequest& req) const;

  /// Attribution sink for one finished /route request: observes every phase
  /// into the altroute_request_phase_seconds histogram and feeds the
  /// slow-query log. `response` is null when Process() failed outright.
  void RecordRouteForensics(const HttpRequest& req, const std::string& city,
                            const QueryResponse* response,
                            const obs::RequestProfile& profile);

  std::shared_ptr<NetworkManager> manager_;
  RatingStore ratings_;
  SlowQueryLog slow_queries_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace altroute
