// DemoService: wires the query-processor pool and rating store into HTTP
// routes, forming the complete web demo backend of paper Sec. 3 / Figs. 2-3:
//   GET /            - landing page (instructions, Fig. 2 stand-in)
//   GET /route       - ?slat=&slng=&tlat=&tlng= -> masked A-D route sets
//   GET /directions  - ?slat=&slng=&tlat=&tlng=&label=A..D -> turn-by-turn
//   GET /rate        - ?a=&b=&c=&d=&resident=&comment= -> store a form
//   GET /stats       - submission count + mean rating per masked label
//   GET /metrics     - Prometheus text exposition of the process registry
// /route additionally honours &trace=1, appending a "trace" member with the
// query's span tree (wall times + per-engine search statistics).
//
// Handlers are thread-safe: each request checks a QueryProcessor context
// out of the pool for its duration (the engines are per-context mutable
// state; the network and index are shared, immutable). RatingStore is
// internally synchronised.
#pragma once

#include <memory>

#include "server/http_server.h"
#include "server/query_processor.h"
#include "server/query_processor_pool.h"
#include "server/rating_store.h"

namespace altroute {

class DemoService {
 public:
  /// Concurrent serving: one checked-out context per in-flight query.
  explicit DemoService(std::unique_ptr<QueryProcessorPool> pool);

  /// Single-context convenience (tests, serial tools): wraps the processor
  /// in a pool of one, so handlers still serialise on it safely.
  explicit DemoService(std::unique_ptr<QueryProcessor> processor);

  /// Registers all demo routes on `server`. The service must outlive it.
  void Install(HttpServer* server);

  RatingStore& ratings() { return ratings_; }
  QueryProcessorPool& pool() { return *pool_; }

 private:
  HttpResponse HandleRoute(const HttpRequest& req);
  HttpResponse HandleDirections(const HttpRequest& req);
  HttpResponse HandleRate(const HttpRequest& req);
  HttpResponse HandleStats(const HttpRequest& req) const;
  HttpResponse HandleIndex(const HttpRequest& req) const;
  HttpResponse HandleMetrics(const HttpRequest& req) const;

  std::unique_ptr<QueryProcessorPool> pool_;
  RatingStore ratings_;
};

}  // namespace altroute
