// Turn-by-turn directions: renders a Path as the human-readable instruction
// list a navigation UI displays next to the map (the textual half of the
// demo's route presentation). Instructions are derived purely from geometry
// and road class — depart, continue, slight/normal/sharp left/right,
// U-turn, arrive — with distances and durations per leg.
#pragma once

#include <string>
#include <vector>

#include "core/path.h"

namespace altroute {

/// The maneuver starting a leg.
enum class ManeuverType {
  kDepart,
  kContinue,       // road class changes without a significant turn
  kSlightLeft,
  kSlightRight,
  kLeft,
  kRight,
  kSharpLeft,
  kSharpRight,
  kUTurn,
  kArrive,
};

/// Stable lowercase name ("left", "slight_right", ...).
std::string_view ManeuverName(ManeuverType type);

/// One instruction: maneuver + the stretch driven until the next one.
struct DirectionStep {
  ManeuverType maneuver = ManeuverType::kDepart;
  /// Road class driven on during this leg.
  RoadClass road_class = RoadClass::kUnclassified;
  double distance_m = 0.0;
  double duration_s = 0.0;
  /// Rendered instruction, e.g. "turn left onto secondary road, 1.2 km".
  std::string text;
};

/// Thresholds separating slight / normal / sharp turns (degrees).
struct DirectionsOptions {
  double slight_threshold_deg = 25.0;  // below: continue straight
  double normal_threshold_deg = 60.0;  // slight until here
  double sharp_threshold_deg = 120.0;  // normal until here, sharp beyond
  double u_turn_threshold_deg = 165.0;
};

/// Builds the instruction list for a path. An empty path yields just a
/// depart+arrive pair collapsed to arrive. Never fails on a valid Path.
std::vector<DirectionStep> BuildDirections(const RoadNetwork& net,
                                           const Path& path,
                                           const DirectionsOptions& options = {});

/// Signed turn angle at b when traveling a -> b -> c, in (-180, 180]:
/// negative = left, positive = right, 0 = straight.
double SignedTurnDegrees(const LatLng& a, const LatLng& b, const LatLng& c);

}  // namespace altroute
