#include "server/rating_store.h"

#include <cctype>

#include "server/json.h"
#include "util/string_util.h"

namespace altroute {

namespace {

Status ValidateRatings(const RatingSubmission& submission) {
  for (int r : submission.ratings) {
    if (r < 1 || r > 5) {
      return Status::InvalidArgument("ratings must be between 1 and 5");
    }
  }
  return Status::OK();
}

/// Consumes `literal` at position `pos` of `line`, advancing `pos`.
bool Consume(std::string_view line, size_t& pos, std::string_view literal) {
  if (line.substr(pos, literal.size()) != literal) return false;
  pos += literal.size();
  return true;
}

/// Parses a non-negative decimal integer (the ratings are single digits, but
/// accept a few for forward compatibility).
bool ConsumeInt(std::string_view line, size_t& pos, int& out) {
  size_t start = pos;
  int value = 0;
  while (pos < line.size() && pos - start < 6 &&
         std::isdigit(static_cast<unsigned char>(line[pos]))) {
    value = value * 10 + (line[pos] - '0');
    ++pos;
  }
  if (pos == start) return false;
  out = value;
  return true;
}

/// Parses a JSON string body (after the opening quote), undoing the escapes
/// JsonWriter::Escape produces.
bool ConsumeStringBody(std::string_view line, size_t& pos, std::string& out) {
  while (pos < line.size()) {
    char c = line[pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos >= line.size()) return false;
    char esc = line[pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos + 4 > line.size()) return false;
        int code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = line[pos++];
          int digit;
          if (h >= '0' && h <= '9') digit = h - '0';
          else if (h >= 'a' && h <= 'f') digit = h - 'a' + 10;
          else if (h >= 'A' && h <= 'F') digit = h - 'A' + 10;
          else return false;
          code = code * 16 + digit;
        }
        // The writer only emits \u00xx for control characters; reject the
        // rest rather than mis-decode multi-byte sequences.
        if (code > 0xFF) return false;
        out += static_cast<char>(code);
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated string (truncated line)
}

}  // namespace

std::string RatingSubmissionToJsonLine(const RatingSubmission& submission) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ratings").BeginArray();
  for (int r : submission.ratings) w.Int(r);
  w.EndArray();
  w.Key("resident").Bool(submission.melbourne_resident);
  w.Key("comment").String(submission.comment);
  w.EndObject();
  return w.TakeString();
}

Result<RatingSubmission> ParseRatingSubmissionJsonLine(std::string_view line) {
  line = Trim(line);
  RatingSubmission s;
  size_t pos = 0;
  if (!Consume(line, pos, "{\"ratings\":[")) {
    return Status::InvalidArgument("malformed rating record");
  }
  for (int a = 0; a < kNumApproaches; ++a) {
    if (a > 0 && !Consume(line, pos, ",")) {
      return Status::InvalidArgument("malformed rating record");
    }
    int value = 0;
    if (!ConsumeInt(line, pos, value)) {
      return Status::InvalidArgument("malformed rating record");
    }
    s.ratings[static_cast<size_t>(a)] = value;
  }
  if (!Consume(line, pos, "],\"resident\":")) {
    return Status::InvalidArgument("malformed rating record");
  }
  if (Consume(line, pos, "true")) {
    s.melbourne_resident = true;
  } else if (Consume(line, pos, "false")) {
    s.melbourne_resident = false;
  } else {
    return Status::InvalidArgument("malformed rating record");
  }
  if (!Consume(line, pos, ",\"comment\":\"")) {
    return Status::InvalidArgument("malformed rating record");
  }
  if (!ConsumeStringBody(line, pos, s.comment)) {
    return Status::InvalidArgument("truncated rating record");
  }
  if (!Consume(line, pos, "}") || pos != line.size()) {
    return Status::InvalidArgument("malformed rating record");
  }
  if (Status valid = ValidateRatings(s); !valid.ok()) return valid;
  return s;
}

Status RatingStore::AttachFile(const std::string& path) {
  MutexLock lock(&mu_);
  corrupt_lines_ = 0;
  {
    // Replay whatever the previous process managed to write. A missing file
    // is fine (first run); a torn final line is fine (crash mid-append).
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (Trim(line).empty()) continue;
      auto parsed = ParseRatingSubmissionJsonLine(line);
      if (parsed.ok()) {
        submissions_.push_back(std::move(*parsed));
      } else {
        ++corrupt_lines_;
      }
    }
  }
  // A torn final line (crash between the record and its newline) must not
  // absorb the next append: heal the tail with a newline so every future
  // record starts a fresh line.
  bool needs_newline = false;
  {
    std::ifstream tail(path, std::ios::binary);
    if (tail.is_open() && tail.seekg(-1, std::ios::end)) {
      char last = '\n';
      if (tail.get(last)) needs_newline = last != '\n';
    }
  }
  log_.open(path, std::ios::out | std::ios::app);
  if (!log_.is_open()) {
    return Status::IOError("cannot open ratings file for append: " + path);
  }
  if (needs_newline) {
    log_ << '\n';
    log_.flush();
  }
  return Status::OK();
}

size_t RatingStore::corrupt_lines_recovered() const {
  MutexLock lock(&mu_);
  return corrupt_lines_;
}

Status RatingStore::Add(const RatingSubmission& submission) {
  if (Status valid = ValidateRatings(submission); !valid.ok()) return valid;
  MutexLock lock(&mu_);
  if (log_.is_open()) {
    // Durability before visibility: the line must reach the OS before the
    // submission counts, so a crash can lose at most the in-flight form.
    log_ << RatingSubmissionToJsonLine(submission) << '\n';
    log_.flush();
    if (!log_.good()) {
      log_.clear();
      return Status::IOError("failed to append rating to log file");
    }
  }
  submissions_.push_back(submission);
  return Status::OK();
}

size_t RatingStore::size() const {
  MutexLock lock(&mu_);
  return submissions_.size();
}

std::vector<RatingSubmission> RatingStore::Snapshot() const {
  MutexLock lock(&mu_);
  return submissions_;
}

std::array<double, kNumApproaches> RatingStore::MeanRatings() const {
  MutexLock lock(&mu_);
  std::array<double, kNumApproaches> means{};
  if (submissions_.empty()) return means;
  for (const RatingSubmission& s : submissions_) {
    for (int a = 0; a < kNumApproaches; ++a) {
      means[static_cast<size_t>(a)] += s.ratings[static_cast<size_t>(a)];
    }
  }
  for (double& m : means) m /= static_cast<double>(submissions_.size());
  return means;
}

Status RatingStore::ExportCsv(std::ostream& out) const {
  MutexLock lock(&mu_);
  out << "A,B,C,D,resident,comment\n";
  for (const RatingSubmission& s : submissions_) {
    for (int a = 0; a < kNumApproaches; ++a) {
      out << s.ratings[static_cast<size_t>(a)] << ",";
    }
    out << (s.melbourne_resident ? 1 : 0) << ",";
    // Quote the comment; double embedded quotes per RFC 4180.
    out << '"';
    for (char c : s.comment) {
      if (c == '"') out << '"';
      out << c;
    }
    out << "\"\n";
  }
  if (!out.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

}  // namespace altroute
