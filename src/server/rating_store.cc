#include "server/rating_store.h"

namespace altroute {

Status RatingStore::Add(const RatingSubmission& submission) {
  for (int r : submission.ratings) {
    if (r < 1 || r > 5) {
      return Status::InvalidArgument("ratings must be between 1 and 5");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  submissions_.push_back(submission);
  return Status::OK();
}

size_t RatingStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submissions_.size();
}

std::vector<RatingSubmission> RatingStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submissions_;
}

std::array<double, kNumApproaches> RatingStore::MeanRatings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<double, kNumApproaches> means{};
  if (submissions_.empty()) return means;
  for (const RatingSubmission& s : submissions_) {
    for (int a = 0; a < kNumApproaches; ++a) {
      means[static_cast<size_t>(a)] += s.ratings[static_cast<size_t>(a)];
    }
  }
  for (double& m : means) m /= static_cast<double>(submissions_.size());
  return means;
}

Status RatingStore::ExportCsv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "A,B,C,D,resident,comment\n";
  for (const RatingSubmission& s : submissions_) {
    for (int a = 0; a < kNumApproaches; ++a) {
      out << s.ratings[static_cast<size_t>(a)] << ",";
    }
    out << (s.melbourne_resident ? 1 : 0) << ",";
    // Quote the comment; double embedded quotes per RFC 4180.
    out << '"';
    for (char c : s.comment) {
      if (c == '"') out << '"';
      out << c;
    }
    out << "\"\n";
  }
  if (!out.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

}  // namespace altroute
