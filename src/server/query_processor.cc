#include "server/query_processor.h"

#include <cmath>

#include "core/path.h"
#include "geo/polyline.h"
#include "geo/simplify.h"
#include "server/json.h"

namespace altroute {

QueryProcessor::QueryProcessor(EngineSuite suite)
    : suite_(std::move(suite)), index_(suite_.network().coords()) {}

namespace {
struct Snapped {
  NodeId source;
  NodeId target;
  double source_dist_m;
  double target_dist_m;
};
}  // namespace

/// Shared geo-coordinate matching for all endpoints.
static Result<Snapped> Snap(const SpatialIndex& index, const RoadNetwork& net,
                            const LatLng& source, const LatLng& target,
                            double max_snap_m) {
  if (!source.IsValid() || !target.IsValid()) {
    return Status::InvalidArgument("coordinates out of range");
  }
  Snapped out;
  ALTROUTE_ASSIGN_OR_RETURN(out.source, index.Nearest(source));
  ALTROUTE_ASSIGN_OR_RETURN(out.target, index.Nearest(target));
  out.source_dist_m = HaversineMeters(source, net.coord(out.source));
  out.target_dist_m = HaversineMeters(target, net.coord(out.target));
  if (out.source_dist_m > max_snap_m || out.target_dist_m > max_snap_m) {
    return Status::InvalidArgument(
        "clicked location is outside the study area");
  }
  if (out.source == out.target) {
    return Status::InvalidArgument("source and target snap to the same vertex");
  }
  return out;
}

Result<QueryResponse> QueryProcessor::Process(const LatLng& source,
                                              const LatLng& target) {
  ALTROUTE_ASSIGN_OR_RETURN(
      Snapped snapped, Snap(index_, suite_.network(), source, target,
                            max_snap_distance_m_));
  QueryResponse response;
  const NodeId s = snapped.source;
  const NodeId t = snapped.target;
  response.snapped_source = s;
  response.snapped_target = t;
  response.snap_distance_source_m = snapped.source_dist_m;
  response.snap_distance_target_m = snapped.target_dist_m;

  const std::vector<double>& display = suite_.display_weights();
  for (Approach a : kAllApproaches) {
    ALTROUTE_ASSIGN_OR_RETURN(AlternativeSet set, suite_.engine(a).Generate(s, t));
    ApproachDisplay ad;
    ad.label = ApproachLabel(a);
    for (const Path& p : set.routes) {
      DisplayedRoute route;
      // The demo computes every approach's displayed travel time from the
      // OSM data and rounds to minutes (paper Sec. 3).
      route.travel_time_min =
          static_cast<int>(std::lround(CostUnder(p, display) / 60.0));
      route.length_km = p.length_m / 1000.0;
      route.polyline = EncodePolyline(SimplifyPolyline(
          PathCoords(suite_.network(), p), polyline_tolerance_m_));
      ad.routes.push_back(std::move(route));
    }
    response.approaches.push_back(std::move(ad));
  }
  return response;
}

Result<AlternativeSet> QueryProcessor::GenerateFor(const LatLng& source,
                                                   const LatLng& target,
                                                   Approach approach) {
  ALTROUTE_ASSIGN_OR_RETURN(
      Snapped snapped, Snap(index_, suite_.network(), source, target,
                            max_snap_distance_m_));
  return suite_.engine(approach).Generate(snapped.source, snapped.target);
}

std::string QueryProcessor::ToJson(const QueryResponse& response) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("snapped_source").Int(static_cast<int64_t>(response.snapped_source));
  w.Key("snapped_target").Int(static_cast<int64_t>(response.snapped_target));
  w.Key("approaches").BeginArray();
  for (const ApproachDisplay& ad : response.approaches) {
    w.BeginObject();
    w.Key("label").String(std::string(1, ad.label));
    w.Key("routes").BeginArray();
    for (const DisplayedRoute& r : ad.routes) {
      w.BeginObject();
      w.Key("travel_time_min").Int(r.travel_time_min);
      w.Key("length_km").Number(r.length_km);
      w.Key("polyline").String(r.polyline);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace altroute
