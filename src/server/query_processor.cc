#include "server/query_processor.h"

#include <chrono>
#include <cmath>

#include "core/path.h"
#include "geo/polyline.h"
#include "geo/simplify.h"
#include "obs/metrics.h"
#include "server/json.h"
#include "util/logging.h"

namespace altroute {

namespace {

/// The query-path metric families, registered once and cached (registration
/// takes the registry mutex; observations are wait-free).
struct QueryMetrics {
  obs::CounterFamily& queries;
  obs::CounterFamily& query_errors;
  obs::HistogramFamily& latency;
  obs::CounterFamily& nodes_settled;
  obs::CounterFamily& edges_relaxed;
  obs::CounterFamily& heap_pushes;
  obs::CounterFamily& heap_pops;
  obs::CounterFamily& paths_generated;
  obs::CounterFamily& paths_rejected;

  static QueryMetrics& Get() {
    static QueryMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new QueryMetrics{
          reg.GetCounterFamily("altroute_queries_total",
                               "Route queries processed successfully.",
                               {"city"}),
          reg.GetCounterFamily("altroute_query_errors_total",
                               "Route queries that returned an error.",
                               {"city"}),
          reg.GetHistogramFamily(
              "altroute_query_latency_seconds",
              "Wall time of one engine's alternative-route generation.",
              {"approach", "city"},
              // 0.1 ms .. ~13 s in geometric steps of 2.
              obs::ExponentialBuckets(1e-4, 2.0, 18)),
          reg.GetCounterFamily("altroute_search_nodes_settled_total",
                               "Nodes settled by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_search_edges_relaxed_total",
                               "Edges relaxed by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_search_heap_pushes_total",
                               "Priority-queue pushes by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_search_heap_pops_total",
                               "Priority-queue pops by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_paths_generated_total",
                               "Candidate paths produced by the generators.",
                               {"approach", "city"}),
          reg.GetCounterFamily(
              "altroute_paths_rejected_total",
              "Candidate paths dropped, by rejection reason.",
              {"approach", "city", "reason"}),
      };
    }();
    return *m;
  }
};

void RecordEngineRun(const std::string& approach, const std::string& city,
                     const obs::SearchStats& s, double elapsed_s) {
  QueryMetrics& m = QueryMetrics::Get();
  m.latency.WithLabels({approach, city}).Observe(elapsed_s);
  m.nodes_settled.WithLabels({approach, city}).Increment(s.nodes_settled);
  m.edges_relaxed.WithLabels({approach, city}).Increment(s.edges_relaxed);
  m.heap_pushes.WithLabels({approach, city}).Increment(s.heap_pushes);
  m.heap_pops.WithLabels({approach, city}).Increment(s.heap_pops);
  m.paths_generated.WithLabels({approach, city}).Increment(s.paths_generated);
  if (s.paths_rejected_stretch > 0) {
    m.paths_rejected.WithLabels({approach, city, "stretch"})
        .Increment(s.paths_rejected_stretch);
  }
  if (s.paths_rejected_similarity > 0) {
    m.paths_rejected.WithLabels({approach, city, "similarity"})
        .Increment(s.paths_rejected_similarity);
  }
  if (s.paths_rejected_filter > 0) {
    m.paths_rejected.WithLabels({approach, city, "filter"})
        .Increment(s.paths_rejected_filter);
  }
}

}  // namespace

QueryProcessor::QueryProcessor(EngineSuite suite)
    : suite_(std::move(suite)),
      index_(std::make_shared<const SpatialIndex>(suite_.network().coords())) {}

QueryProcessor::QueryProcessor(EngineSuite suite,
                               std::shared_ptr<const SpatialIndex> index)
    : suite_(std::move(suite)), index_(std::move(index)) {
  ALTROUTE_CHECK(index_ != nullptr) << "null spatial index";
  ALTROUTE_CHECK(index_->size() == suite_.network().num_nodes())
      << "spatial index does not match the network";
}

namespace {
struct Snapped {
  NodeId source;
  NodeId target;
  double source_dist_m;
  double target_dist_m;
};
}  // namespace

/// Shared geo-coordinate matching for all endpoints.
static Result<Snapped> Snap(const SpatialIndex& index, const RoadNetwork& net,
                            const LatLng& source, const LatLng& target,
                            double max_snap_m) {
  if (!source.IsValid() || !target.IsValid()) {
    return Status::InvalidArgument("coordinates out of range");
  }
  Snapped out;
  ALTROUTE_ASSIGN_OR_RETURN(out.source, index.Nearest(source));
  ALTROUTE_ASSIGN_OR_RETURN(out.target, index.Nearest(target));
  out.source_dist_m = HaversineMeters(source, net.coord(out.source));
  out.target_dist_m = HaversineMeters(target, net.coord(out.target));
  if (out.source_dist_m > max_snap_m || out.target_dist_m > max_snap_m) {
    return Status::InvalidArgument(
        "clicked location is outside the study area");
  }
  if (out.source == out.target) {
    return Status::InvalidArgument("source and target snap to the same vertex");
  }
  return out;
}

Result<QueryResponse> QueryProcessor::Process(const LatLng& source,
                                              const LatLng& target,
                                              obs::Trace* trace) {
  const std::string& city = suite_.network().name();
  QueryMetrics& metrics = QueryMetrics::Get();
  obs::TraceSpan query_span(trace, "query");

  obs::TraceSpan snap_span(trace, "snap");
  auto snapped_or = Snap(*index_, suite_.network(), source, target,
                         max_snap_distance_m_);
  snap_span.End();
  if (!snapped_or.ok()) {
    metrics.query_errors.WithLabels({city}).Increment();
    ALTROUTE_LOG(Warning) << "snap failed: " << snapped_or.status().ToString();
    return snapped_or.status();
  }
  const Snapped snapped = snapped_or.ValueOrDie();

  QueryResponse response;
  const NodeId s = snapped.source;
  const NodeId t = snapped.target;
  response.snapped_source = s;
  response.snapped_target = t;
  response.snap_distance_source_m = snapped.source_dist_m;
  response.snap_distance_target_m = snapped.target_dist_m;

  const std::vector<double>& display = suite_.display_weights();
  for (Approach a : kAllApproaches) {
    AlternativeRouteGenerator& engine = suite_.engine(a);
    obs::TraceSpan span(trace, "generate:" + engine.name());
    obs::SearchStats search_stats;
    const auto begin = std::chrono::steady_clock::now();
    auto set_or = engine.Generate(s, t, &search_stats);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    RecordEngineRun(engine.name(), city, search_stats, elapsed_s);
    if (obs::SearchStats* sink = span.stats()) sink->MergeFrom(search_stats);
    span.SetAttr("label", std::string(1, ApproachLabel(a)));
    if (!set_or.ok()) {
      metrics.query_errors.WithLabels({city}).Increment();
      ALTROUTE_LOG(Warning) << engine.name()
                            << " failed: " << set_or.status().ToString();
      return set_or.status();
    }
    AlternativeSet set = std::move(set_or).ValueOrDie();
    span.SetAttr("routes", std::to_string(set.routes.size()));

    ApproachDisplay ad;
    ad.label = ApproachLabel(a);
    for (const Path& p : set.routes) {
      DisplayedRoute route;
      // The demo computes every approach's displayed travel time from the
      // OSM data and rounds to minutes (paper Sec. 3).
      route.travel_time_min =
          static_cast<int>(std::lround(CostUnder(p, display) / 60.0));
      route.length_km = p.length_m / 1000.0;
      route.polyline = EncodePolyline(SimplifyPolyline(
          PathCoords(suite_.network(), p), polyline_tolerance_m_));
      ad.routes.push_back(std::move(route));
    }
    response.approaches.push_back(std::move(ad));
  }
  metrics.queries.WithLabels({city}).Increment();
  return response;
}

Result<AlternativeSet> QueryProcessor::GenerateFor(const LatLng& source,
                                                   const LatLng& target,
                                                   Approach approach,
                                                   obs::SearchStats* stats) {
  ALTROUTE_ASSIGN_OR_RETURN(
      Snapped snapped, Snap(*index_, suite_.network(), source, target,
                            max_snap_distance_m_));
  return suite_.engine(approach).Generate(snapped.source, snapped.target,
                                          stats);
}

std::string QueryProcessor::ToJson(const QueryResponse& response,
                                   const obs::Trace* trace) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("snapped_source").Int(static_cast<int64_t>(response.snapped_source));
  w.Key("snapped_target").Int(static_cast<int64_t>(response.snapped_target));
  w.Key("approaches").BeginArray();
  for (const ApproachDisplay& ad : response.approaches) {
    w.BeginObject();
    w.Key("label").String(std::string(1, ad.label));
    w.Key("routes").BeginArray();
    for (const DisplayedRoute& r : ad.routes) {
      w.BeginObject();
      w.Key("travel_time_min").Int(r.travel_time_min);
      w.Key("length_km").Number(r.length_km);
      w.Key("polyline").String(r.polyline);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  if (trace != nullptr && trace->size() > 0) {
    w.Key("trace").RawValue(trace->ToJson());
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace altroute
