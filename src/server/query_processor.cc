#include "server/query_processor.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <exception>

#include "core/path.h"
#include "geo/polyline.h"
#include "geo/simplify.h"
#include "obs/metrics.h"
#include "server/json.h"
#include "util/fault_injector.h"
#include "util/check.h"
#include "util/logging.h"

namespace altroute {

namespace {

/// The query-path metric families, registered once and cached (registration
/// takes the registry mutex; observations are wait-free).
struct QueryMetrics {
  obs::CounterFamily& queries;
  obs::CounterFamily& query_errors;
  obs::HistogramFamily& latency;
  obs::CounterFamily& nodes_settled;
  obs::CounterFamily& edges_relaxed;
  obs::CounterFamily& heap_pushes;
  obs::CounterFamily& heap_pops;
  obs::CounterFamily& paths_generated;
  obs::CounterFamily& paths_rejected;
  obs::CounterFamily& deadline_exceeded;
  obs::CounterFamily& degraded_responses;
  obs::CounterFamily& engine_exceptions;
  obs::HistogramFamily& budget_remaining;

  static QueryMetrics& Get() {
    static QueryMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new QueryMetrics{
          reg.GetCounterFamily("altroute_queries_total",
                               "Route queries processed successfully.",
                               {"city"}),
          reg.GetCounterFamily("altroute_query_errors_total",
                               "Route queries that returned an error.",
                               {"city"}),
          reg.GetHistogramFamily(
              "altroute_query_latency_seconds",
              "Wall time of one engine's alternative-route generation.",
              {"approach", "city"},
              // 0.1 ms .. ~13 s in geometric steps of 2.
              obs::ExponentialBuckets(1e-4, 2.0, 18)),
          reg.GetCounterFamily("altroute_search_nodes_settled_total",
                               "Nodes settled by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_search_edges_relaxed_total",
                               "Edges relaxed by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_search_heap_pushes_total",
                               "Priority-queue pushes by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_search_heap_pops_total",
                               "Priority-queue pops by the routing kernels.",
                               {"approach", "city"}),
          reg.GetCounterFamily("altroute_paths_generated_total",
                               "Candidate paths produced by the generators.",
                               {"approach", "city"}),
          reg.GetCounterFamily(
              "altroute_paths_rejected_total",
              "Candidate paths dropped, by rejection reason.",
              {"approach", "city", "reason"}),
          reg.GetCounterFamily(
              "altroute_deadline_exceeded_total",
              "Engine runs cut short by a deadline, by engine.",
              {"engine", "city"}),
          reg.GetCounterFamily(
              "altroute_degraded_responses_total",
              "Responses served with at least one failed or truncated engine.",
              {"city"}),
          reg.GetCounterFamily(
              "altroute_engine_exceptions_total",
              "Exceptions thrown by an engine and converted to a degraded "
              "response, by engine.",
              {"engine"}),
          reg.GetHistogramFamily(
              "altroute_engine_budget_remaining_seconds",
              "Request-deadline budget remaining when each engine started.",
              {"approach", "city"},
              // 1 ms .. ~16 s in geometric steps of 2.
              obs::ExponentialBuckets(1e-3, 2.0, 15)),
      };
    }();
    return *m;
  }
};

void RecordEngineRun(const std::string& approach, const std::string& city,
                     const obs::SearchStats& s, double elapsed_s) {
  QueryMetrics& m = QueryMetrics::Get();
  m.latency.WithLabels({approach, city}).Observe(elapsed_s);
  m.nodes_settled.WithLabels({approach, city}).Increment(s.nodes_settled);
  m.edges_relaxed.WithLabels({approach, city}).Increment(s.edges_relaxed);
  m.heap_pushes.WithLabels({approach, city}).Increment(s.heap_pushes);
  m.heap_pops.WithLabels({approach, city}).Increment(s.heap_pops);
  m.paths_generated.WithLabels({approach, city}).Increment(s.paths_generated);
  if (s.paths_rejected_stretch > 0) {
    m.paths_rejected.WithLabels({approach, city, "stretch"})
        .Increment(s.paths_rejected_stretch);
  }
  if (s.paths_rejected_similarity > 0) {
    m.paths_rejected.WithLabels({approach, city, "similarity"})
        .Increment(s.paths_rejected_similarity);
  }
  if (s.paths_rejected_filter > 0) {
    m.paths_rejected.WithLabels({approach, city, "filter"})
        .Increment(s.paths_rejected_filter);
  }
}

/// "DeadlineExceeded" -> "deadline_exceeded" for the per-approach JSON
/// status field.
std::string SnakeCase(std::string_view code_name) {
  std::string out;
  out.reserve(code_name.size() + 4);
  for (char c : code_name) {
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (!out.empty()) out.push_back('_');
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

QueryProcessor::QueryProcessor(EngineSuite suite)
    : suite_(std::move(suite)),
      index_(std::make_shared<const SpatialIndex>(suite_.network().coords())) {}

QueryProcessor::QueryProcessor(EngineSuite suite,
                               std::shared_ptr<const SpatialIndex> index)
    : suite_(std::move(suite)), index_(std::move(index)) {
  ALT_CHECK(index_ != nullptr) << "null spatial index";
  ALT_CHECK(index_->size() == suite_.network().num_nodes())
      << "spatial index does not match the network";
}

namespace {
struct Snapped {
  NodeId source;
  NodeId target;
  double source_dist_m;
  double target_dist_m;
};
}  // namespace

/// Shared geo-coordinate matching for all endpoints.
static Result<Snapped> Snap(const SpatialIndex& index, const RoadNetwork& net,
                            const LatLng& source, const LatLng& target,
                            double max_snap_m) {
  if (!source.IsValid() || !target.IsValid()) {
    return Status::InvalidArgument("coordinates out of range");
  }
  Snapped out;
  ALTROUTE_ASSIGN_OR_RETURN(out.source, index.Nearest(source));
  ALTROUTE_ASSIGN_OR_RETURN(out.target, index.Nearest(target));
  out.source_dist_m = HaversineMeters(source, net.coord(out.source));
  out.target_dist_m = HaversineMeters(target, net.coord(out.target));
  if (out.source_dist_m > max_snap_m || out.target_dist_m > max_snap_m) {
    return Status::InvalidArgument(
        "clicked location is outside the study area");
  }
  if (out.source == out.target) {
    return Status::InvalidArgument("source and target snap to the same vertex");
  }
  return out;
}

Result<QueryResponse> QueryProcessor::Process(const LatLng& source,
                                              const LatLng& target,
                                              obs::Trace* trace,
                                              Deadline deadline,
                                              obs::RequestProfile* profile) {
  const std::string& city = suite_.network().name();
  QueryMetrics& metrics = QueryMetrics::Get();
  obs::TraceSpan query_span(trace, "query");

  obs::TraceSpan snap_span(trace, "snap");
  obs::PhaseTimer snap_phase(profile, "snap");
  Status snap_fault = FaultInjector::Global().Check("snap");
  auto snapped_or = snap_fault.ok()
                        ? Snap(*index_, suite_.network(), source, target,
                               max_snap_distance_m_)
                        : Result<Snapped>(snap_fault);
  snap_phase.End();
  snap_span.End();
  if (!snapped_or.ok()) {
    metrics.query_errors.WithLabels({city}).Increment();
    ALTROUTE_LOG(Warning) << "snap failed: " << snapped_or.status().ToString();
    return snapped_or.status();
  }
  const Snapped snapped = snapped_or.ValueOrDie();

  QueryResponse response;
  const NodeId s = snapped.source;
  const NodeId t = snapped.target;
  response.snapped_source = s;
  response.snapped_target = t;
  response.snap_distance_source_m = snapped.source_dist_m;
  response.snap_distance_target_m = snapped.target_dist_m;

  const std::vector<double>& display = suite_.display_weights();
  const size_t num_engines = kAllApproaches.size();
  size_t engines_done = 0;
  size_t engines_failed = 0;
  Status first_failure = Status::OK();
  for (size_t engine_index = 0; engine_index < num_engines; ++engine_index) {
    const Approach a = kAllApproaches[engine_index];
    AlternativeRouteGenerator& engine = suite_.engine(a);
    const std::string approach_label(1, ApproachLabel(a));

    // A spent request deadline means nothing more can be computed: fail the
    // whole request (the HTTP layer answers 504) rather than shipping an
    // all-degraded body late.
    const double remaining_s = deadline.RemainingSeconds();
    if (deadline.Expired()) {
      metrics.query_errors.WithLabels({city}).Increment();
      metrics.deadline_exceeded.WithLabels({engine.name(), city}).Increment();
      return Status::DeadlineExceeded("request deadline exhausted after " +
                                      std::to_string(engines_done) +
                                      " of " + std::to_string(num_engines) +
                                      " engines");
    }

    // Failure containment: an open circuit breaker skips the engine
    // immediately — the persistently failing engine must not burn its
    // budget slice on every request — and the approach ships with status
    // "breaker_open". Every admitted run reports its outcome back below.
    CircuitBreaker* breaker = nullptr;
    if (breakers_ != nullptr) {
      breaker = &breakers_->ForEngine(engine.name());
      if (!breaker->Allow()) {
        ++engines_done;
        ++engines_failed;
        if (first_failure.ok()) {
          first_failure = Status::FailedPrecondition(
              engine.name() + std::string(": circuit breaker open"));
        }
        response.degraded = true;
        obs::TraceSpan skip_span(trace, "generate:" + engine.name());
        skip_span.SetAttr("label", approach_label);
        skip_span.SetAttr("status", "breaker_open");
        ApproachDisplay skipped;
        skipped.label = ApproachLabel(a);
        skipped.engine_name = engine.name();
        skipped.status = "breaker_open";
        skipped.message = "circuit breaker open; engine skipped";
        response.approaches.push_back(std::move(skipped));
        continue;
      }
    }

    // Slice the remaining budget evenly across the engines still expected
    // to run: this engine plus every later one whose breaker is not open.
    // A skipped engine's slice is thereby redistributed to the survivors.
    Deadline engine_deadline = deadline;
    if (!deadline.is_infinite()) {
      metrics.budget_remaining.WithLabels({approach_label, city})
          .Observe(remaining_s);
      size_t runnable = 1;
      for (size_t j = engine_index + 1; j < num_engines; ++j) {
        if (breakers_ == nullptr ||
            breakers_->ForEngine(suite_.engine(kAllApproaches[j]).name())
                    .state() != BreakerState::kOpen) {
          ++runnable;
        }
      }
      engine_deadline =
          Deadline::AfterSeconds(remaining_s / static_cast<double>(runnable));
    }
    CancellationToken token(engine_deadline);

    obs::TraceSpan span(trace, "generate:" + engine.name());
    obs::SearchStats search_stats;
    const auto begin = std::chrono::steady_clock::now();
    // Injected latency is checked after the token is created so a simulated
    // slow engine burns its own budget, exactly like a real one.
    Result<AlternativeSet> set_or = [&]() -> Result<AlternativeSet> {
      Status fault = FaultInjector::Global().Check("engine:" + engine.name());
      if (!fault.ok()) return fault;
      if (token.StopNow()) {
        return Status::DeadlineExceeded("engine budget exhausted");
      }
      try {
        return engine.Generate(s, t, &search_stats, &token);
      } catch (const std::exception& e) {
        // Isolation barrier: one engine's bug degrades its lane only. The
        // exception is logged with its message and counted per engine so a
        // throwing engine is visible on /metrics, never silently absorbed.
        metrics.engine_exceptions.WithLabels({engine.name()}).Increment();
        ALTROUTE_LOG(Error) << engine.name() << " threw: " << e.what();
        return Status::Internal(engine.name() + std::string(" threw: ") +
                                e.what());
      } catch (...) {  // allowlisted in altroute_lint (bare-catch): last-resort
                       // barrier for non-std::exception throws; logged and
                       // counted above all the same, nothing is swallowed.
        metrics.engine_exceptions.WithLabels({engine.name()}).Increment();
        ALTROUTE_LOG(Error) << engine.name() << " threw a non-exception object";
        return Status::Internal(engine.name() + " threw a non-exception");
      }
    }();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    RecordEngineRun(engine.name(), city, search_stats, elapsed_s);
    if (breaker != nullptr) {
      // Every admitted run reports exactly one outcome. A partial result's
      // completion status is judged the same way as an outright failure.
      const Status& outcome =
          set_or.ok() ? set_or.ValueOrDie().completion : set_or.status();
      if (EngineBreakerSet::CountsAsFailure(outcome)) {
        breaker->RecordFailure();
      } else {
        breaker->RecordSuccess();
      }
    }
    if (profile != nullptr) {
      profile->Record("engine:" + engine.name(), elapsed_s);
    }
    if (obs::SearchStats* sink = span.stats()) sink->MergeFrom(search_stats);
    span.SetAttr("label", approach_label);
    ++engines_done;

    ApproachDisplay ad;
    ad.label = ApproachLabel(a);
    ad.engine_name = engine.name();
    ad.elapsed_ms = elapsed_s * 1e3;
    ad.stats = search_stats;
    AlternativeSet set;
    if (!set_or.ok()) {
      // Fault isolation: this engine ships empty, the others still run.
      ++engines_failed;
      if (first_failure.ok()) first_failure = set_or.status();
      response.degraded = true;
      ad.status = SnakeCase(StatusCodeToString(set_or.status().code()));
      ad.message = set_or.status().message();
      if (set_or.status().IsDeadlineExceeded()) {
        metrics.deadline_exceeded.WithLabels({engine.name(), city}).Increment();
      }
      ALTROUTE_LOG(Warning) << engine.name()
                            << " degraded: " << set_or.status().ToString();
      span.SetAttr("status", ad.status);
      response.approaches.push_back(std::move(ad));
      continue;
    }
    set = std::move(set_or).ValueOrDie();
    if (!set.completion.ok()) {
      // Partial result: the routes found before the budget ran out still
      // ship, but the approach (and response) are marked degraded.
      response.degraded = true;
      ad.status = SnakeCase(StatusCodeToString(set.completion.code()));
      ad.message = set.completion.message();
      if (set.completion.IsDeadlineExceeded()) {
        metrics.deadline_exceeded.WithLabels({engine.name(), city}).Increment();
      }
      span.SetAttr("status", ad.status);
    }
    span.SetAttr("routes", std::to_string(set.routes.size()));

    // "render" accumulates across engines: one aggregate entry for turning
    // raw paths into display routes (travel time, simplify, polyline).
    obs::PhaseTimer render_phase(profile, "render");
    Status render_fault = FaultInjector::Global().Check("render");
    if (!render_fault.ok()) {
      // The routes were computed but cannot be turned into display geometry:
      // the approach ships empty and degraded. Not an engine failure — the
      // breaker already recorded the generation outcome above.
      response.degraded = true;
      if (ad.status == "ok") {
        ad.status = SnakeCase(StatusCodeToString(render_fault.code()));
        span.SetAttr("status", ad.status);
      }
      ad.message = render_fault.message();
      ALTROUTE_LOG(Warning) << engine.name()
                            << " render degraded: " << render_fault.ToString();
    } else {
      for (const Path& p : set.routes) {
        DisplayedRoute route;
        // The demo computes every approach's displayed travel time from the
        // OSM data and rounds to minutes (paper Sec. 3).
        route.travel_time_min =
            static_cast<int>(std::lround(CostUnder(p, display) / 60.0));
        route.length_km = p.length_m / 1000.0;
        route.polyline = EncodePolyline(SimplifyPolyline(
            PathCoords(suite_.network(), p), polyline_tolerance_m_));
        ad.routes.push_back(std::move(route));
      }
    }
    render_phase.End();
    response.approaches.push_back(std::move(ad));
  }
  if (engines_failed == num_engines) {
    // Nothing survived; surface the first failure so e.g. an unreachable
    // pair still answers NotFound rather than a hollow 200.
    metrics.query_errors.WithLabels({city}).Increment();
    return first_failure;
  }
  metrics.queries.WithLabels({city}).Increment();
  if (response.degraded) {
    metrics.degraded_responses.WithLabels({city}).Increment();
  }
  return response;
}

Result<AlternativeSet> QueryProcessor::GenerateFor(const LatLng& source,
                                                   const LatLng& target,
                                                   Approach approach,
                                                   obs::SearchStats* stats,
                                                   Deadline deadline) {
  ALTROUTE_ASSIGN_OR_RETURN(
      Snapped snapped, Snap(*index_, suite_.network(), source, target,
                            max_snap_distance_m_));
  CancellationToken token(deadline);
  return suite_.engine(approach).Generate(snapped.source, snapped.target,
                                          stats, &token);
}

std::string QueryProcessor::ToJson(const QueryResponse& response,
                                   const obs::Trace* trace,
                                   obs::RequestProfile* profile,
                                   std::string_view request_id) const {
  // Serialization is itself a phase: it runs until just before the phases
  // block is written, so the breakdown accounts for (almost all of) the
  // bytes it is embedded in.
  obs::PhaseTimer serialize_phase(profile, "serialize");
  JsonWriter w;
  w.BeginObject();
  if (!request_id.empty()) w.Key("request_id").String(request_id);
  w.Key("snapped_source").Int(static_cast<int64_t>(response.snapped_source));
  w.Key("snapped_target").Int(static_cast<int64_t>(response.snapped_target));
  w.Key("degraded").Bool(response.degraded);
  w.Key("approaches").BeginArray();
  for (const ApproachDisplay& ad : response.approaches) {
    w.BeginObject();
    w.Key("label").String(std::string(1, ad.label));
    w.Key("status").String(ad.status);
    if (!ad.message.empty()) w.Key("message").String(ad.message);
    w.Key("routes").BeginArray();
    for (const DisplayedRoute& r : ad.routes) {
      w.BeginObject();
      w.Key("travel_time_min").Int(r.travel_time_min);
      w.Key("length_km").Number(r.length_km);
      w.Key("polyline").String(r.polyline);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  if (trace != nullptr && trace->size() > 0) {
    w.Key("trace").RawValue(trace->ToJson());
  }
  serialize_phase.End();
  if (trace != nullptr && profile != nullptr) {
    // Phase breakdown ships only on ?trace=1, alongside the span tree; the
    // profile still timed "serialize" above either way (slow-query records
    // need it even for untraced requests).
    w.Key("phases").RawValue(profile->ToJson());
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace altroute
