#include "server/directions.h"

#include <cmath>

#include "util/string_util.h"

namespace altroute {

std::string_view ManeuverName(ManeuverType type) {
  switch (type) {
    case ManeuverType::kDepart:
      return "depart";
    case ManeuverType::kContinue:
      return "continue";
    case ManeuverType::kSlightLeft:
      return "slight_left";
    case ManeuverType::kSlightRight:
      return "slight_right";
    case ManeuverType::kLeft:
      return "left";
    case ManeuverType::kRight:
      return "right";
    case ManeuverType::kSharpLeft:
      return "sharp_left";
    case ManeuverType::kSharpRight:
      return "sharp_right";
    case ManeuverType::kUTurn:
      return "u_turn";
    case ManeuverType::kArrive:
      return "arrive";
  }
  return "?";
}

double SignedTurnDegrees(const LatLng& a, const LatLng& b, const LatLng& c) {
  const double in = InitialBearingDegrees(a, b);
  const double out = InitialBearingDegrees(b, c);
  double delta = out - in;
  while (delta > 180.0) delta -= 360.0;
  while (delta <= -180.0) delta += 360.0;
  return delta;
}

namespace {

ManeuverType ClassifyTurn(double signed_deg, const DirectionsOptions& options) {
  const double magnitude = std::fabs(signed_deg);
  if (magnitude >= options.u_turn_threshold_deg) return ManeuverType::kUTurn;
  if (magnitude < options.slight_threshold_deg) return ManeuverType::kContinue;
  const bool right = signed_deg > 0.0;
  if (magnitude < options.normal_threshold_deg) {
    return right ? ManeuverType::kSlightRight : ManeuverType::kSlightLeft;
  }
  if (magnitude < options.sharp_threshold_deg) {
    return right ? ManeuverType::kRight : ManeuverType::kLeft;
  }
  return right ? ManeuverType::kSharpRight : ManeuverType::kSharpLeft;
}

std::string HumanDistance(double meters) {
  if (meters < 950.0) {
    return FormatFixed(std::round(meters / 10.0) * 10.0, 0) + " m";
  }
  return FormatFixed(meters / 1000.0, 1) + " km";
}

std::string VerbFor(ManeuverType type) {
  switch (type) {
    case ManeuverType::kDepart:
      return "head out on";
    case ManeuverType::kContinue:
      return "continue on";
    case ManeuverType::kSlightLeft:
      return "bear left onto";
    case ManeuverType::kSlightRight:
      return "bear right onto";
    case ManeuverType::kLeft:
      return "turn left onto";
    case ManeuverType::kRight:
      return "turn right onto";
    case ManeuverType::kSharpLeft:
      return "turn sharply left onto";
    case ManeuverType::kSharpRight:
      return "turn sharply right onto";
    case ManeuverType::kUTurn:
      return "make a U-turn onto";
    case ManeuverType::kArrive:
      return "arrive";
  }
  return "?";
}

}  // namespace

std::vector<DirectionStep> BuildDirections(const RoadNetwork& net,
                                           const Path& path,
                                           const DirectionsOptions& options) {
  std::vector<DirectionStep> steps;
  if (path.empty()) {
    DirectionStep arrive;
    arrive.maneuver = ManeuverType::kArrive;
    arrive.text = "arrive (start and destination coincide)";
    steps.push_back(std::move(arrive));
    return steps;
  }

  // Start the first leg with a depart maneuver.
  DirectionStep current;
  current.maneuver = ManeuverType::kDepart;
  current.road_class = net.road_class(path.edges.front());

  auto flush = [&](DirectionStep next) {
    current.text = VerbFor(current.maneuver) + " " +
                   std::string(RoadClassName(current.road_class)) + " road, " +
                   HumanDistance(current.distance_m);
    steps.push_back(current);
    current = std::move(next);
  };

  for (size_t i = 0; i < path.edges.size(); ++i) {
    const EdgeId e = path.edges[i];
    current.distance_m += net.length_m(e);
    current.duration_s += net.travel_time_s(e);
    if (i + 1 >= path.edges.size()) break;

    const EdgeId next_edge = path.edges[i + 1];
    const double turn = SignedTurnDegrees(net.coord(net.tail(e)),
                                          net.coord(net.head(e)),
                                          net.coord(net.head(next_edge)));
    ManeuverType maneuver = ClassifyTurn(turn, options);
    const RoadClass next_class = net.road_class(next_edge);
    // A new leg begins on any real turn, or when the road class changes
    // (announced as "continue on X").
    if (maneuver == ManeuverType::kContinue &&
        next_class == current.road_class) {
      continue;  // same leg keeps accumulating
    }
    DirectionStep next;
    next.maneuver = maneuver;
    next.road_class = next_class;
    flush(std::move(next));
  }

  // Emit the final driving leg, then the arrival marker.
  DirectionStep arrive;
  arrive.maneuver = ManeuverType::kArrive;
  flush(std::move(arrive));
  current.text =
      "arrive at destination (" + HumanDistance(path.length_m) + " total, " +
      FormatFixed(path.travel_time_s / 60.0, 0) + " min)";
  steps.push_back(current);
  return steps;
}

}  // namespace altroute
