// URL utilities for the demo HTTP server: percent-decoding and query-string
// parsing.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace altroute {

/// Percent-decodes a URL component ("%2C" -> ",", "+" -> " ").
std::string UrlDecode(std::string_view s);

/// Splits "a=1&b=two" into {a: "1", b: "two"} with percent-decoding.
/// Repeated keys keep the last value; keys without '=' map to "".
std::map<std::string, std::string> ParseQueryString(std::string_view query);

/// Splits a request target "/path?query" into path and raw query.
void SplitTarget(std::string_view target, std::string* path, std::string* query);

}  // namespace altroute
