// URL utilities for the demo HTTP server: percent-decoding, query-string
// parsing and request-line/target splitting.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace altroute {

/// Percent-decodes a URL component ("%2C" -> ",", "+" -> " ").
std::string UrlDecode(std::string_view s);

/// Splits "a=1&b=two" into {a: "1", b: "two"} with percent-decoding.
/// Repeated keys keep the last value; keys without '=' map to "".
std::map<std::string, std::string> ParseQueryString(std::string_view query);

/// Splits a request target "/path?query" into path and raw query. The path
/// is NOT percent-decoded: routes are matched on the raw bytes so that
/// "/rou%74e" cannot alias "/route" (and pollute bounded-cardinality metric
/// labels); decode explicitly (e.g. for logging) with UrlDecode.
void SplitTarget(std::string_view target, std::string* path, std::string* query);

/// Parses an HTTP/1.1 request line ("GET /path HTTP/1.1") into method and
/// target, tolerating repeated spaces between tokens. Returns false when
/// fewer than two non-empty tokens are present. The HTTP version token is
/// optional and ignored.
bool ParseRequestLine(std::string_view line, std::string* method,
                      std::string* target);

}  // namespace altroute
