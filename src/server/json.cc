#include "server/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'A') {
    if (!first_in_container_) out_ << ",";
    first_in_container_ = false;
  } else if (top == 'o') {
    top = 'O';  // value written; next comes a key
  } else {
    ALT_DCHECK(false) << "JSON value written where key expected";
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ << "{";
  stack_.push_back('O');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  ALT_DCHECK(!stack_.empty() && stack_.back() == 'O');
  stack_.pop_back();
  out_ << "}";
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ << "[";
  stack_.push_back('A');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  ALT_DCHECK(!stack_.empty() && stack_.back() == 'A');
  stack_.pop_back();
  out_ << "]";
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  ALT_DCHECK(!stack_.empty() && stack_.back() == 'O');
  if (!first_in_container_) out_ << ",";
  first_in_container_ = false;
  out_ << '"' << Escape(key) << "\":";
  stack_.back() = 'o';
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << '"' << Escape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  ALT_DCHECK(!json.empty()) << "raw JSON value must not be empty";
  BeforeValue();
  out_ << json;
  return *this;
}

std::string JsonWriter::TakeString() {
  ALT_DCHECK(stack_.empty()) << "unclosed JSON containers";
  return out_.str();
}

}  // namespace altroute
