#include "server/geojson.h"

#include <cmath>

#include "server/json.h"

namespace altroute {

namespace {

void WriteFeature(JsonWriter* w, const RoadNetwork& net, const Path& path,
                  int rank) {
  w->BeginObject();
  w->Key("type").String("Feature");
  w->Key("geometry").BeginObject();
  w->Key("type").String("LineString");
  w->Key("coordinates").BeginArray();
  for (const LatLng& p : PathCoords(net, path)) {
    w->BeginArray();
    w->Number(p.lng);  // GeoJSON order is [lng, lat]
    w->Number(p.lat);
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
  w->Key("properties").BeginObject();
  w->Key("rank").Int(rank);
  w->Key("travel_time_min")
      .Int(static_cast<int64_t>(std::lround(path.travel_time_s / 60.0)));
  w->Key("length_km").Number(path.length_m / 1000.0);
  w->EndObject();
  w->EndObject();
}

}  // namespace

std::string RouteToGeoJson(const RoadNetwork& net, const Path& path,
                           int rank) {
  JsonWriter w;
  WriteFeature(&w, net, path, rank);
  return w.TakeString();
}

std::string AlternativeSetToGeoJson(const RoadNetwork& net,
                                    const AlternativeSet& set,
                                    char masked_label) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("FeatureCollection");
  w.Key("properties").BeginObject();
  w.Key("label").String(std::string(1, masked_label));
  w.Key("num_routes").Int(static_cast<int64_t>(set.routes.size()));
  w.EndObject();
  w.Key("features").BeginArray();
  for (size_t i = 0; i < set.routes.size(); ++i) {
    WriteFeature(&w, net, set.routes[i], static_cast<int>(i) + 1);
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace altroute
