// Slow-query forensics: keeps the most recent requests and the worst
// offenders in lock-cheap in-memory ring buffers, and — above a configurable
// threshold — appends one structured JSONL record per offender to a
// crash-safe log (same append/heal idiom as RatingStore: flush before
// visibility, torn trailing lines skipped and counted on replay).
//
// A record carries everything needed to reconstruct where a slow request's
// time went without reproducing it: request id, city, raw query params, the
// phase breakdown (obs::RequestProfile), per-engine wall time + SearchStats
// + status, the deadline budget remaining when the response was finished,
// and the degraded flag. Surfaced over HTTP as GET /debug/slow (worst) and
// GET /debug/requests (recent).
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/search_stats.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace altroute {

/// One engine's share of a recorded request.
struct SlowQueryEngine {
  std::string name;
  /// "ok" or the snake_case failure code ("deadline_exceeded", ...).
  std::string status = "ok";
  double elapsed_ms = 0.0;
  obs::SearchStats stats;
};

/// One fully-attributed request record.
struct SlowQueryRecord {
  std::string request_id;
  std::string city;
  /// Raw request parameters (slat/slng/tlat/tlng/...), bounded by the
  /// handler — never unfiltered client input.
  std::map<std::string, std::string> params;
  double total_ms = 0.0;
  /// Phase name -> milliseconds, in recorded order.
  std::vector<std::pair<std::string, double>> phases;
  std::vector<SlowQueryEngine> engines;
  /// Request-deadline budget left when the response was finished; negative
  /// when the request ran without a deadline.
  double budget_remaining_ms = -1.0;
  bool degraded = false;
};

/// Serializes a record as a single JSONL line (no trailing newline).
std::string SlowQueryRecordToJsonLine(const SlowQueryRecord& record);

/// Parses a line produced by SlowQueryRecordToJsonLine. InvalidArgument on
/// malformed or truncated input.
Result<SlowQueryRecord> ParseSlowQueryRecordJsonLine(std::string_view line);

/// Thread-safe request forensics store. The critical section per Add() is a
/// couple of deque operations plus (for offenders only) one buffered file
/// append — cheap next to the request that was just timed.
class SlowQueryLog {
 public:
  struct Options {
    /// Recent-request ring capacity (GET /debug/requests).
    size_t recent_capacity = 64;
    /// Worst-request list capacity (GET /debug/slow).
    size_t worst_capacity = 32;
    /// Requests STRICTLY slower than this are offenders: logged to the
    /// attached file and counted. A request taking exactly threshold_ms is
    /// not an offender. <= 0 disables offender logging (the rings still
    /// record everything).
    double threshold_ms = 0.0;
  };

  SlowQueryLog() = default;
  explicit SlowQueryLog(Options options) : options_(options) {}

  /// Enables persistence: replays offender records from `path` into the
  /// worst list (so /debug/slow survives a restart), heals a torn trailing
  /// line, then keeps the file open for appending. Corrupt lines are
  /// skipped and counted, never fatal. IOError only when the file cannot be
  /// opened for append.
  Status AttachFile(const std::string& path);

  /// Lines skipped during the last AttachFile() replay.
  size_t corrupt_lines_recovered() const;

  /// Records one finished request: always enters the recent ring and
  /// competes for the worst list; when it exceeds the threshold it is also
  /// appended (and flushed) to the attached file. Returns true when the
  /// record was an offender.
  bool Add(const SlowQueryRecord& record);

  /// Recent requests, newest first.
  std::vector<SlowQueryRecord> Recent() const;

  /// Worst requests by total_ms, slowest first.
  std::vector<SlowQueryRecord> Worst() const;

  /// Offenders recorded since construction (threshold crossings, whether or
  /// not a file is attached).
  uint64_t offenders_total() const;

  /// Snapshot of the current options. By value: set_threshold_ms() mutates
  /// options_ under mu_ at runtime, so handing out a reference would let the
  /// caller read a field mid-write.
  Options options() const {
    MutexLock lock(&mu_);
    return options_;
  }
  void set_threshold_ms(double ms) {
    MutexLock lock(&mu_);
    options_.threshold_ms = ms;
  }

 private:
  mutable Mutex mu_;
  Options options_ ALT_GUARDED_BY(mu_);
  std::deque<SlowQueryRecord> recent_ ALT_GUARDED_BY(mu_);  // newest at back
  std::vector<SlowQueryRecord> worst_
      ALT_GUARDED_BY(mu_);  // sorted slowest-first
  uint64_t offenders_ ALT_GUARDED_BY(mu_) = 0;
  std::ofstream log_ ALT_GUARDED_BY(mu_);  // open iff a file is attached
  size_t corrupt_lines_ ALT_GUARDED_BY(mu_) = 0;

  void InsertWorstLocked(const SlowQueryRecord& record) ALT_REQUIRES(mu_);
};

}  // namespace altroute
