#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "server/json.h"
#include "server/url.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace altroute {

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error").String(message);
  w.EndObject();
  HttpResponse r;
  r.status = status;
  r.body = w.TakeString();
  return r;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, HttpHandler handler) {
  ALTROUTE_CHECK(!running_.load()) << "Route() after Start()";
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind() failed (port in use?)");
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  ALTROUTE_LOG(Info) << "HTTP server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks accept(); close() releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // transient accept error
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  // Read until the end of headers (plus Content-Length body bytes).
  std::string data;
  char buf[4096];
  size_t header_end = std::string::npos;
  while (data.size() < (1u << 20)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) return;

  HttpRequest req;
  {
    std::istringstream head(data.substr(0, header_end));
    std::string request_line;
    std::getline(head, request_line);
    if (!request_line.empty() && request_line.back() == '\r') {
      request_line.pop_back();
    }
    const auto parts = Split(request_line, ' ');
    if (parts.size() < 2) return;
    req.method = parts[0];
    std::string raw_query;
    SplitTarget(parts[1], &req.path, &raw_query);
    req.query = ParseQueryString(raw_query);

    std::string header_line;
    while (std::getline(head, header_line)) {
      if (!header_line.empty() && header_line.back() == '\r') {
        header_line.pop_back();
      }
      const size_t colon = header_line.find(':');
      if (colon == std::string::npos) continue;
      req.headers[ToLower(Trim(header_line.substr(0, colon)))] =
          std::string(Trim(header_line.substr(colon + 1)));
    }
  }

  // Body (bounded at 1 MiB).
  size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    auto parsed = ParseInt64(it->second);
    if (parsed.ok() && *parsed >= 0 && *parsed <= (1 << 20)) {
      content_length = static_cast<size_t>(*parsed);
    }
  }
  const size_t body_start = header_end + 4;
  while (data.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  req.body = data.substr(body_start,
                         std::min(content_length, data.size() - body_start));

  HttpResponse resp;
  auto it = routes_.find(req.path);
  if (it == routes_.end()) {
    resp = HttpResponse::Error(404, "no such endpoint: " + req.path);
  } else {
    resp = it->second(req);
  }

  // Path label cardinality is bounded: only registered routes are named.
  static obs::CounterFamily& requests =
      obs::MetricsRegistry::Global().GetCounterFamily(
          "altroute_http_requests_total", "HTTP requests served.",
          {"path", "code"});
  requests
      .WithLabels({it == routes_.end() ? "unmatched" : req.path,
                   std::to_string(resp.status)})
      .Increment();
  ALTROUTE_LOG(Debug) << req.method << " " << req.path << " -> " << resp.status;

  const char* reason = resp.status == 200   ? "OK"
                       : resp.status == 400 ? "Bad Request"
                       : resp.status == 404 ? "Not Found"
                                            : "Error";
  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << " " << reason << "\r\n"
      << "Content-Type: " << resp.content_type << "\r\n"
      << "Content-Length: " << resp.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << resp.body;
  const std::string payload = out.str();
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace altroute
