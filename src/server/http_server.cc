#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "server/json.h"
#include "server/url.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace altroute {

namespace {

/// The HTTP-layer instruments, registered once and cached (registration
/// takes the registry mutex; updates are wait-free).
struct ServerMetrics {
  obs::CounterFamily& requests;
  obs::Counter& shed;
  obs::CounterFamily& queue_rejected;
  obs::Gauge& inflight;
  obs::Gauge& queue_depth;
  obs::Gauge& worker_threads;
  obs::Gauge& workers_busy;

  static ServerMetrics& Get() {
    static ServerMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new ServerMetrics{
          // Path label cardinality is bounded: registered routes plus the
          // fixed labels "unmatched", "malformed" and "shed" (the path is
          // never percent-decoded before matching).
          reg.GetCounterFamily("altroute_http_requests_total",
                               "HTTP requests served.", {"path", "code"}),
          reg.GetCounter("altroute_http_requests_shed_total",
                         "Connections rejected with 503 before dispatch "
                         "(backpressure shed: queue full, draining, or "
                         "sustained queue delay)."),
          reg.GetCounterFamily(
              "altroute_queue_rejected_total",
              "Connections rejected before their handler ran, by reason: "
              "queue_full and draining (hard shed), queue_delay (CoDel-style "
              "adaptive shed), expired (budget spent while queued).",
              {"reason"}),
          reg.GetGauge("altroute_http_inflight_requests",
                       "Requests currently being parsed or handled."),
          reg.GetGauge("altroute_http_queue_depth",
                       "Accepted connections waiting for a worker."),
          reg.GetGauge("altroute_http_worker_threads",
                       "Size of the HTTP worker pool."),
          reg.GetGauge("altroute_http_workers_busy",
                       "Workers currently handling a connection."),
      };
    }();
    return *m;
  }
};

/// "r" + sequence number. Built by append, not operator+(const char*,
/// string&&): GCC 12 raises a false-positive -Wrestrict on the latter.
std::string RequestIdString(uint64_t id) {
  std::string s = "r";
  s += std::to_string(id);
  return s;
}

void SetSocketTimeouts(int fd, const HttpServerOptions& options) {
  const auto set = [fd](int opt, int ms) {
    if (ms <= 0) return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
  };
  set(SO_RCVTIMEO, options.recv_timeout_ms);
  set(SO_SNDTIMEO, options.send_timeout_ms);
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 422: return "Unprocessable Content";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Error";
  }
}

/// Machine-readable error class for the structured body, keyed by the HTTP
/// status (snake_case, matching the per-approach status codes in /route).
const char* ErrorCodeForHttpStatus(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 408: return "request_timeout";
    case 422: return "invalid_argument";
    case 431: return "headers_too_large";
    case 500: return "internal";
    case 501: return "unimplemented";
    case 503: return "unavailable";
    case 504: return "deadline_exceeded";
    default: return "error";
  }
}

}  // namespace

int HttpStatusForStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    // Semantically invalid input (well-formed request, bad content): the
    // coordinates parsed but cannot be processed — 422, not 400.
    case StatusCode::kInvalidArgument: return 422;
    case StatusCode::kOutOfRange: return 422;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kFailedPrecondition: return 503;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kIOError: return 500;
    case StatusCode::kCorruption: return 500;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

HttpResponse HttpResponse::Error(int status, const std::string& message,
                                 const std::string& request_id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error").BeginObject();
  w.Key("code").String(ErrorCodeForHttpStatus(status));
  w.Key("message").String(message);
  if (!request_id.empty()) w.Key("request_id").String(request_id);
  w.EndObject();
  w.EndObject();
  HttpResponse r;
  r.status = status;
  r.body = w.TakeString();
  r.request_id = request_id;
  return r;
}

HttpResponse HttpResponse::FromStatus(const Status& status,
                                      const std::string& request_id) {
  return Error(HttpStatusForStatusCode(status.code()), status.message(),
               request_id);
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, HttpHandler handler) {
  ALT_CHECK(!running_.load()) << "Route() after Start()";
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already running");

  // Belt and braces alongside MSG_NOSIGNAL: a write to a half-closed socket
  // must return EPIPE, never kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind() failed (port in use?)");
  }
  if (::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  {
    MutexLock lock(&mu_);
    draining_ = false;
    workers_exit_ = false;
  }
  queue_above_target_since_ns_.store(0);
  running_.store(true);
  accepting_.store(true);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  ServerMetrics::Get().worker_threads.Set(static_cast<double>(threads));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ALTROUTE_LOG(Info) << "HTTP server listening on 127.0.0.1:" << port_
                     << " with " << threads << " worker thread(s)";
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;

  // Phase 1: shed new connections with 503 while the listener winds down.
  {
    MutexLock lock(&mu_);
    draining_ = true;
  }
  accepting_.store(false);
  // shutdown() unblocks accept(); close() releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // Phase 2: workers finish queued and in-flight requests, then exit.
  {
    MutexLock lock(&mu_);
    workers_exit_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  ServerMetrics::Get().worker_threads.Set(0.0);
}

void HttpServer::AcceptLoop() {
  while (accepting_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!accepting_.load()) break;
      continue;  // transient accept error
    }
    SetSocketTimeouts(fd, options_);
    // The deadline is stamped here, not at dispatch: a request that sat in
    // the queue has already consumed part of its budget. The request id is
    // assigned here too, so even shed connections are identifiable.
    const Deadline deadline = options_.request_timeout_ms > 0
                                  ? Deadline::AfterMs(options_.request_timeout_ms)
                                  : Deadline::Infinite();
    const uint64_t request_id = next_request_id_.fetch_add(1) + 1;

    // Liveness is answered here, on the accept thread: a probe must succeed
    // even when every worker is wedged and the queue is full. The peek is
    // non-blocking — a probe whose bytes are already in gets the fast path;
    // one still in flight gets a second, bounded chance below, but only
    // when it would otherwise be shed.
    const bool healthz_routed = routes_.count("/healthz") > 0;
    if (healthz_routed && PeekIsHealthz(fd, /*poll_ms=*/0)) {
      ServeHealthzInline(fd, request_id);
      ::close(fd);
      continue;
    }

    const char* shed_reason = nullptr;
    {
      MutexLock lock(&mu_);
      if (draining_) {
        shed_reason = "draining";
      } else if (queue_.size() >= options_.queue_capacity) {
        shed_reason = "queue_full";
      } else if (QueueDelayExceeded()) {
        shed_reason = "queue_delay";
      } else {
        if (queue_.empty()) {
          // An empty queue means zero wait: clear any stale CoDel latch left
          // from a burst that has since drained.
          queue_above_target_since_ns_.store(0);
        }
        queue_.push_back({fd, deadline, request_id,
                          std::chrono::steady_clock::now()});
        ServerMetrics::Get().queue_depth.Set(
            static_cast<double>(queue_.size()));
      }
    }
    if (shed_reason != nullptr) {
      // About to shed: wait briefly for the first bytes in case this is a
      // probe whose request was still in flight at the peek above.
      if (healthz_routed && options_.healthz_poll_ms > 0 &&
          PeekIsHealthz(fd, options_.healthz_poll_ms)) {
        ServeHealthzInline(fd, request_id);
        ::close(fd);
        continue;
      }
      // Backpressure: reply immediately instead of queueing unbounded work.
      ServerMetrics::Get().shed.Increment();
      ServerMetrics::Get().queue_rejected.WithLabels({shed_reason}).Increment();
      SendResponse(fd,
                   HttpResponse::Error(503, "server overloaded",
                                       RequestIdString(request_id)),
                   "shed");
      ::close(fd);
      continue;
    }
    queue_cv_.NotifyOne();
  }
}

bool HttpServer::PeekIsHealthz(int fd, int poll_ms) {
  // "GET /healthz " — the trailing space rules out longer paths; a probe
  // with a query string takes the normal queued path.
  static constexpr char kProbe[] = "GET /healthz ";
  static constexpr size_t kProbeLen = sizeof(kProbe) - 1;
  char buf[kProbeLen];
  ssize_t n = ::recv(fd, buf, kProbeLen, MSG_PEEK | MSG_DONTWAIT);
  if (n < static_cast<ssize_t>(kProbeLen) && poll_ms > 0) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (::poll(&p, 1, poll_ms) > 0) {
      n = ::recv(fd, buf, kProbeLen, MSG_PEEK | MSG_DONTWAIT);
    }
  }
  return n == static_cast<ssize_t>(kProbeLen) &&
         std::memcmp(buf, kProbe, kProbeLen) == 0;
}

void HttpServer::ServeHealthzInline(int fd, uint64_t request_id) {
  const std::string id = RequestIdString(request_id);
  HttpRequest req;
  req.method = "GET";
  req.path = "/healthz";
  req.deadline = Deadline::Infinite();
  req.request_id = id;
  HttpResponse resp = routes_.at("/healthz")(req);
  resp.request_id = id;
  SendResponse(fd, resp, "/healthz");
}

void HttpServer::ObserveQueueWait(double queue_wait_s) {
  if (options_.queue_target_delay_ms <= 0) return;
  if (queue_wait_s * 1e3 > static_cast<double>(options_.queue_target_delay_ms)) {
    int64_t expected = 0;
    const int64_t now_ns =
        std::chrono::steady_clock::now().time_since_epoch().count();
    // Only the first above-target observation stamps the clock; later ones
    // leave it so the duration above target keeps accumulating.
    queue_above_target_since_ns_.compare_exchange_strong(expected, now_ns);
  } else {
    queue_above_target_since_ns_.store(0);
  }
}

bool HttpServer::QueueDelayExceeded() const {
  if (options_.queue_target_delay_ms <= 0) return false;
  const int64_t since_ns = queue_above_target_since_ns_.load();
  if (since_ns == 0) return false;
  const int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  return now_ns - since_ns >=
         static_cast<int64_t>(options_.queue_delay_interval_ms) * 1'000'000;
}

void HttpServer::WorkerLoop() {
  ServerMetrics& metrics = ServerMetrics::Get();
  for (;;) {
    QueuedConnection conn;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !workers_exit_) queue_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // workers_exit_ and nothing left to drain
      conn = queue_.front();
      queue_.pop_front();
      metrics.queue_depth.Set(static_cast<double>(queue_.size()));
    }
    const double queue_wait_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      conn.accepted_at)
            .count();
    ObserveQueueWait(queue_wait_s);
    // A request whose whole budget was spent waiting in the queue is dead
    // on arrival: answer 504 without even reading its bytes, so the worker
    // is immediately free for a request that can still make its deadline.
    if (conn.deadline.Expired()) {
      metrics.queue_rejected.WithLabels({"expired"}).Increment();
      HttpResponse resp = HttpResponse::Error(
          504, "request expired waiting in queue",
          RequestIdString(conn.request_id));
      resp.retry_after_s = 1;
      SendResponse(conn.fd, resp, "shed");
      ::close(conn.fd);
      continue;
    }
    {
      obs::GaugeGuard busy(metrics.workers_busy);
      HandleConnection(conn.fd, conn.deadline,
                       RequestIdString(conn.request_id), queue_wait_s);
    }
    ::close(conn.fd);
  }
}

bool HttpServer::SendAll(int fd, std::string_view payload) {
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;  // EPIPE/timeout: peer is gone, give up quietly
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpServer::SendResponse(int fd, const HttpResponse& resp,
                              const std::string& path_label) {
  ServerMetrics::Get()
      .requests.WithLabels({path_label, std::to_string(resp.status)})
      .Increment();
  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << " " << ReasonPhrase(resp.status)
      << "\r\n"
      << "Content-Type: " << resp.content_type << "\r\n"
      << "Content-Length: " << resp.body.size() << "\r\n";
  if (!resp.request_id.empty()) {
    out << "X-Request-Id: " << resp.request_id << "\r\n";
  }
  // Every 503 tells the client when to come back, even when the handler
  // forgot to say; other statuses only when explicitly asked.
  if (resp.status == 503 || resp.retry_after_s > 0) {
    out << "Retry-After: " << std::max(1, resp.retry_after_s) << "\r\n";
  }
  out << "Connection: close\r\n\r\n" << resp.body;
  SendAll(fd, out.str());
}

void HttpServer::HandleConnection(int fd, const Deadline& deadline,
                                  const std::string& request_id,
                                  double queue_wait_s) {
  obs::GaugeGuard inflight(ServerMetrics::Get().inflight);

  // Read until the end of headers (plus Content-Length body bytes).
  std::string data;
  char buf[4096];
  size_t header_end = std::string::npos;
  bool timed_out = false;
  while (data.size() < options_.max_header_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      break;
    }
    if (n == 0) break;  // peer closed
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) {
    // A connection with no bytes at all closes quietly (the client went
    // away); anything else gets an explicit error instead of vanishing.
    if (data.empty()) return;
    if (data.size() >= options_.max_header_bytes) {
      SendResponse(fd,
                   HttpResponse::Error(431, "request header fields too large",
                                       request_id),
                   "malformed");
    } else if (timed_out) {
      SendResponse(fd,
                   HttpResponse::Error(408, "request timed out", request_id),
                   "malformed");
    } else {
      SendResponse(fd,
                   HttpResponse::Error(400, "malformed request", request_id),
                   "malformed");
    }
    return;
  }

  HttpRequest req;
  {
    std::istringstream head(data.substr(0, header_end));
    std::string request_line;
    std::getline(head, request_line);
    if (!request_line.empty() && request_line.back() == '\r') {
      request_line.pop_back();
    }
    std::string target;
    if (!ParseRequestLine(request_line, &req.method, &target)) {
      SendResponse(
          fd, HttpResponse::Error(400, "malformed request line", request_id),
          "malformed");
      return;
    }
    std::string raw_query;
    SplitTarget(target, &req.path, &raw_query);
    req.query = ParseQueryString(raw_query);

    std::string header_line;
    while (std::getline(head, header_line)) {
      if (!header_line.empty() && header_line.back() == '\r') {
        header_line.pop_back();
      }
      const size_t colon = header_line.find(':');
      if (colon == std::string::npos) continue;
      req.headers[ToLower(Trim(header_line.substr(0, colon)))] =
          std::string(Trim(header_line.substr(colon + 1)));
    }
  }

  // Body (bounded at max_body_bytes; larger declared lengths are ignored).
  size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    auto parsed = ParseInt64(it->second);
    if (parsed.ok() && *parsed >= 0 &&
        static_cast<size_t>(*parsed) <= options_.max_body_bytes) {
      content_length = static_cast<size_t>(*parsed);
    }
  }
  const size_t body_start = header_end + 4;
  while (data.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed or timed out mid-body
    data.append(buf, static_cast<size_t>(n));
  }
  req.body = data.substr(body_start,
                         std::min(content_length, data.size() - body_start));

  req.deadline = deadline;
  req.request_id = request_id;
  req.queue_wait_s = queue_wait_s;

  HttpResponse resp;
  auto it = routes_.find(req.path);
  if (it == routes_.end()) {
    resp = HttpResponse::Error(404, "no such endpoint: " + req.path,
                               request_id);
  } else if (deadline.Expired()) {
    // The budget was spent on queue wait + parsing; do not start the
    // handler's (possibly expensive) work at all.
    resp = HttpResponse::Error(
        504, "request deadline exceeded before dispatch", request_id);
  } else {
    resp = it->second(req);
  }
  // Every response carries the id, whether or not the handler set it.
  resp.request_id = request_id;
  // Decoded for human eyes only; matching and metric labels use raw bytes.
  ALTROUTE_LOG(Debug) << request_id << " " << req.method << " "
                      << UrlDecode(req.path) << " -> " << resp.status;
  SendResponse(fd, resp, it == routes_.end() ? "unmatched" : req.path);
}

}  // namespace altroute
