// Storage for submitted feedback forms (paper Fig. 3): 1-5 rating per
// approach plus the residency question and an optional free-text comment.
#pragma once

#include <array>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/engine_registry.h"
#include "util/result.h"

namespace altroute {

/// One completed feedback form.
struct RatingSubmission {
  std::array<int, kNumApproaches> ratings{};  // masked order A-D, each 1-5
  bool melbourne_resident = false;
  std::string comment;
};

/// Thread-safe in-memory submission log with CSV export.
class RatingStore {
 public:
  /// Validates that every rating is in [1, 5]; InvalidArgument otherwise.
  Status Add(const RatingSubmission& submission);

  size_t size() const;
  std::vector<RatingSubmission> Snapshot() const;

  /// Mean rating per approach over all submissions (0 when empty).
  std::array<double, kNumApproaches> MeanRatings() const;

  /// Writes "A,B,C,D,resident,comment" rows with a header.
  Status ExportCsv(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<RatingSubmission> submissions_;
};

}  // namespace altroute
