// Storage for submitted feedback forms (paper Fig. 3): 1-5 rating per
// approach plus the residency question and an optional free-text comment.
// Optionally backed by an append-only JSONL log so participant data survives
// a crash or restart of the demo server.
#pragma once

#include <array>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "core/engine_registry.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace altroute {

/// One completed feedback form.
struct RatingSubmission {
  std::array<int, kNumApproaches> ratings{};  // masked order A-D, each 1-5
  bool melbourne_resident = false;
  std::string comment;
};

/// Thread-safe in-memory submission log with CSV export and optional
/// crash-safe JSONL persistence.
class RatingStore {
 public:
  /// Enables persistence: replays existing submissions from `path` (one JSON
  /// object per line), then keeps the file open for appending. Lines that
  /// fail to parse — e.g. a trailing partial line from a crash mid-write —
  /// are skipped and counted, never fatal; see corrupt_lines_recovered().
  /// Returns IOError only when the file cannot be opened for append.
  Status AttachFile(const std::string& path);

  /// Lines skipped during the last AttachFile() replay because they were
  /// corrupt or truncated.
  size_t corrupt_lines_recovered() const;

  /// Validates that every rating is in [1, 5]; InvalidArgument otherwise.
  /// With a file attached, the submission is appended and flushed to the log
  /// BEFORE becoming visible in memory; a write failure returns IOError and
  /// drops the submission (no memory/disk divergence).
  Status Add(const RatingSubmission& submission);

  size_t size() const;
  std::vector<RatingSubmission> Snapshot() const;

  /// Mean rating per approach over all submissions (0 when empty).
  std::array<double, kNumApproaches> MeanRatings() const;

  /// Writes "A,B,C,D,resident,comment" rows with a header.
  Status ExportCsv(std::ostream& out) const;

 private:
  mutable Mutex mu_;
  std::vector<RatingSubmission> submissions_ ALT_GUARDED_BY(mu_);
  std::ofstream log_ ALT_GUARDED_BY(mu_);  // open iff a file is attached
  size_t corrupt_lines_ ALT_GUARDED_BY(mu_) = 0;
};

/// One submission as a single JSONL record (no trailing newline):
///   {"ratings":[3,4,4,5],"resident":true,"comment":"..."}
std::string RatingSubmissionToJsonLine(const RatingSubmission& submission);

/// Parses a line produced by RatingSubmissionToJsonLine. InvalidArgument on
/// malformed or truncated input (including out-of-range ratings).
Result<RatingSubmission> ParseRatingSubmissionJsonLine(std::string_view line);

}  // namespace altroute
