#include "server/url.h"

namespace altroute {

namespace {
int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexVal(s[i + 1]);
      const int lo = HexVal(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');  // malformed escape: keep literal
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view query) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[UrlDecode(pair)] = "";
      } else {
        out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

void SplitTarget(std::string_view target, std::string* path,
                 std::string* query) {
  const size_t q = target.find('?');
  if (q == std::string_view::npos) {
    *path = std::string(target);
    query->clear();
  } else {
    *path = std::string(target.substr(0, q));
    *query = std::string(target.substr(q + 1));
  }
}

bool ParseRequestLine(std::string_view line, std::string* method,
                      std::string* target) {
  std::string_view tokens[2];
  size_t found = 0;
  size_t i = 0;
  while (i < line.size() && found < 2) {
    while (i < line.size() && line[i] == ' ') ++i;  // skip repeated spaces
    const size_t begin = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > begin) tokens[found++] = line.substr(begin, i - begin);
  }
  if (found < 2) return false;
  *method = std::string(tokens[0]);
  *target = std::string(tokens[1]);
  return true;
}

}  // namespace altroute
