#include "server/engine_breakers.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace altroute {

namespace {

/// The breaker observability instruments, registered once and cached.
struct BreakerMetrics {
  obs::GaugeFamily& state;
  obs::CounterFamily& transitions;

  static BreakerMetrics& Get() {
    static BreakerMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new BreakerMetrics{
          reg.GetGaugeFamily(
              "altroute_breaker_state",
              "Circuit-breaker state per (city, engine): 0 closed, 1 open, "
              "2 half_open.",
              {"city", "engine"}),
          reg.GetCounterFamily(
              "altroute_breaker_transitions_total",
              "Circuit-breaker state transitions per (city, engine), by "
              "target state.",
              {"city", "engine", "to"}),
      };
    }();
    return *m;
  }
};

}  // namespace

EngineBreakerSet::EngineBreakerSet(std::string city,
                                   CircuitBreakerOptions options,
                                   CircuitBreaker::ClockFn clock)
    : city_(std::move(city)), options_(options), clock_(std::move(clock)) {}

CircuitBreaker& EngineBreakerSet::ForEngine(std::string_view engine) {
  MutexLock lock(&mu_);
  auto it = breakers_.find(engine);
  if (it != breakers_.end()) return *it->second;

  const std::string engine_name(engine);
  auto breaker = std::make_unique<CircuitBreaker>(options_, clock_);
  // Cache the per-tuple instruments in the closure: WithLabels takes the
  // family mutex and transitions are rare, but the gauge write must not.
  obs::Gauge& state_gauge =
      BreakerMetrics::Get().state.WithLabels({city_, engine_name});
  state_gauge.Set(static_cast<double>(static_cast<int>(BreakerState::kClosed)));
  const std::string city_name = city_;
  breaker->set_on_transition([&state_gauge, city_name,
                              engine_name](BreakerState to) {
    state_gauge.Set(static_cast<double>(static_cast<int>(to)));
    BreakerMetrics::Get()
        .transitions
        .WithLabels({city_name, engine_name, std::string(BreakerStateName(to))})
        .Increment();
    ALTROUTE_LOG(Info) << "breaker [" << city_name << ", " << engine_name
                       << "] -> " << BreakerStateName(to);
  });
  it = breakers_.emplace(engine_name, std::move(breaker)).first;
  return *it->second;
}

bool EngineBreakerSet::CountsAsFailure(const Status& status) {
  if (status.ok()) return false;
  switch (status.code()) {
    // The engine did its job; the query (or the data) had no answer.
    case StatusCode::kNotFound:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return false;
    default:
      return true;
  }
}

}  // namespace altroute
