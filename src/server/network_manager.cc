#include "server/network_manager.h"

#include <functional>
#include <iterator>

#include "obs/metrics.h"
#include "traffic/traffic_model.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace altroute {

namespace {

/// Data-plane lifecycle instruments, registered once and cached.
struct DataPlaneMetrics {
  obs::CounterFamily& reloads;
  obs::GaugeFamily& snapshot_age;
  obs::CounterFamily& validation_failures;
  obs::CounterFamily& reload_retries;

  static DataPlaneMetrics& Get() {
    static DataPlaneMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new DataPlaneMetrics{
          reg.GetCounterFamily(
              "altroute_network_reloads_total",
              "Network snapshot reload attempts by outcome "
              "(success/failed).",
              {"city", "outcome"}),
          reg.GetGaugeFamily(
              "altroute_network_snapshot_age_seconds",
              "Seconds since the serving snapshot of this city was loaded.",
              {"city"}),
          reg.GetCounterFamily(
              "altroute_network_validation_failures_total",
              "GraphValidator checks that rejected a loaded network.",
              {"city", "check"}),
          reg.GetCounterFamily(
              "altroute_reload_retries_total",
              "Background reload retry attempts after a failed reload.",
              {"city"}),
      };
    }();
    return *m;
  }
};

}  // namespace

Result<std::shared_ptr<const NetworkSnapshot>> NetworkManager::BuildSnapshot(
    const std::string& city, const Loader& loader, uint64_t generation) const {
  if (!loader) {
    return Status::FailedPrecondition("city '" + city +
                                      "' has no loader attached");
  }
  ALTROUTE_ASSIGN_OR_RETURN(std::shared_ptr<RoadNetwork> net, loader());
  if (net == nullptr) {
    return Status::Internal("loader for city '" + city +
                            "' returned a null network");
  }

  const ValidationReport report = ValidateNetwork(*net, options_.validation);
  if (!report.ok()) {
    for (const ValidationIssue& issue : report.issues) {
      DataPlaneMetrics::Get()
          .validation_failures.WithLabels({city, issue.check})
          .Increment();
      ALTROUTE_LOG(Warning) << "validation of city '" << city << "' failed ["
                         << issue.check << "]: " << issue.message;
    }
    return report.ToStatus();
  }

  // Optional CH preprocessing, still off the serving path (we are on the
  // loader's thread). Built over the free-flow weights — the same vector
  // MakePaperSuite derives for the Plateau/Penalty/Dissimilarity engines —
  // so the CH-backed engines answer exactly the queries the plain ones do.
  std::shared_ptr<const ContractionHierarchy> ch;
  double ch_build_seconds = 0.0;
  if (options_.build_ch) {
    const auto ch_start = std::chrono::steady_clock::now();
    Status ch_fault = FaultInjector::Global().Check("ch_build");
    if (!ch_fault.ok()) {
      ALTROUTE_LOG(Warning) << "CH build for city '" << city
                            << "' failed: " << ch_fault;
      return ch_fault;
    }
    const std::vector<double> weights = FreeFlowModel().Weights(*net);
    auto ch_or = ContractionHierarchy::Build(net, weights, options_.ch_options);
    if (!ch_or.ok()) {
      ALTROUTE_LOG(Warning) << "CH build for city '" << city
                         << "' failed: " << ch_or.status();
      return ch_or.status();
    }
    ch = std::move(ch_or).ValueOrDie();
    ch_build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ch_start)
            .count();
    ALTROUTE_LOG(Info) << "CH for city '" << city << "' built in "
                       << ch_build_seconds << "s: " << ch->num_shortcuts()
                       << " shortcuts over " << net->num_edges() << " edges";
  }

  // A fresh breaker set per snapshot: new data plane, new health record. The
  // set is shared by every context in the pool — engine health is a property
  // of the city, not of one worker.
  std::shared_ptr<EngineBreakerSet> breakers;
  if (options_.enable_breakers) {
    breakers = std::make_shared<EngineBreakerSet>(city, options_.breaker,
                                                  options_.breaker_clock);
  }
  ALTROUTE_ASSIGN_OR_RETURN(
      QueryProcessorPool pool,
      QueryProcessorPool::Create(net, options_.contexts_per_city,
                                 AlternativeOptions{}, /*commercial_hour=*/3,
                                 ch, breakers));
  auto snapshot = std::make_shared<NetworkSnapshot>();
  snapshot->pool = std::make_shared<QueryProcessorPool>(std::move(pool));
  snapshot->generation = generation;
  snapshot->loaded_at = std::chrono::steady_clock::now();
  snapshot->ch = std::move(ch);
  snapshot->ch_build_seconds = ch_build_seconds;
  snapshot->breakers = std::move(breakers);
  return std::shared_ptr<const NetworkSnapshot>(std::move(snapshot));
}

Status NetworkManager::AddCity(const std::string& city, Loader loader) {
  if (city.empty()) return Status::InvalidArgument("empty city key");
  {
    MutexLock lock(&mu_);
    if (entries_.count(city) > 0) {
      return Status::InvalidArgument("city '" + city + "' already registered");
    }
  }
  // The initial build runs outside mu_ (it is slow); the entry is only
  // published once it has a valid snapshot, so GetSnapshot never observes a
  // half-added city.
  ALTROUTE_ASSIGN_OR_RETURN(std::shared_ptr<const NetworkSnapshot> snapshot,
                            BuildSnapshot(city, loader, /*generation=*/1));
  auto entry = std::make_unique<Entry>();
  entry->loader = std::move(loader);
  {
    // Not shared yet, but the analysis (rightly) has no notion of "not yet
    // published"; the uncontended lock is free.
    MutexLock entry_lock(&entry->mu);
    entry->snapshot = snapshot;
  }
  MutexLock lock(&mu_);
  if (!entries_.emplace(city, std::move(entry)).second) {
    return Status::InvalidArgument("city '" + city + "' already registered");
  }
  DataPlaneMetrics::Get().snapshot_age.WithLabels({city}).Set(0.0);
  ALTROUTE_LOG(Info) << "city '" << city << "' loaded: "
                     << snapshot->network().num_nodes() << " nodes, "
                     << snapshot->network().num_edges() << " edges";
  return Status::OK();
}

Status NetworkManager::AddCityWithPool(
    const std::string& city, std::shared_ptr<QueryProcessorPool> pool) {
  if (city.empty()) return Status::InvalidArgument("empty city key");
  if (pool == nullptr) return Status::InvalidArgument("null pool");
  auto snapshot = std::make_shared<NetworkSnapshot>();
  snapshot->pool = std::move(pool);
  snapshot->generation = 1;
  snapshot->loaded_at = std::chrono::steady_clock::now();
  auto entry = std::make_unique<Entry>();
  {
    MutexLock entry_lock(&entry->mu);
    entry->snapshot = std::move(snapshot);
  }
  MutexLock lock(&mu_);
  if (!entries_.emplace(city, std::move(entry)).second) {
    return Status::InvalidArgument("city '" + city + "' already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<const NetworkSnapshot>> NetworkManager::GetSnapshot(
    const std::string& city) const {
  const Entry* entry = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(city);
    if (it == entries_.end()) {
      return Status::NotFound("unknown city '" + city + "'");
    }
    entry = it->second.get();
  }
  // entries_ never shrinks, so `entry` stays valid after mu_ is dropped; the
  // snapshot copy contends only with this city's swap, not the whole map.
  MutexLock lock(&entry->mu);
  if (entry->snapshot == nullptr) {
    return Status::FailedPrecondition("city '" + city +
                                      "' has no valid snapshot");
  }
  return entry->snapshot;
}

Status NetworkManager::Reload(const std::string& city) {
  Entry* entry = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(city);
    if (it == entries_.end()) {
      return Status::NotFound("unknown city '" + city + "'");
    }
    entry = it->second.get();
  }
  // entries_ never shrinks, so `entry` stays valid after mu_ is dropped.
  // reload_mu serialises concurrent reloads of this city; the expensive
  // rebuild runs without any serving lock, so readers are never blocked.
  MutexLock reload_lock(&entry->reload_mu);
  uint64_t next_generation;
  {
    MutexLock lock(&entry->mu);
    next_generation =
        entry->snapshot == nullptr ? 1 : entry->snapshot->generation + 1;
  }
  auto rebuilt = BuildSnapshot(city, entry->loader, next_generation);
  if (!rebuilt.ok()) {
    DataPlaneMetrics::Get().reloads.WithLabels({city, "failed"}).Increment();
    ALTROUTE_LOG(Warning) << "reload of city '" << city
                       << "' failed, old snapshot keeps serving: "
                       << rebuilt.status();
    if (options_.retry_failed_reloads) ScheduleRetry(city);
    return rebuilt.status();
  }
  std::shared_ptr<const NetworkSnapshot> old;
  {
    MutexLock lock(&entry->mu);
    old = entry->snapshot;  // keep alive past the lock: dtor can be slow
    entry->snapshot = std::move(rebuilt).ValueOrDie();
  }
  DataPlaneMetrics::Get().reloads.WithLabels({city, "success"}).Increment();
  DataPlaneMetrics::Get().snapshot_age.WithLabels({city}).Set(0.0);
  if (options_.retry_failed_reloads) ClearRetry(city);
  ALTROUTE_LOG(Info) << "city '" << city << "' swapped to generation "
                     << next_generation;
  return Status::OK();
}

NetworkManager::~NetworkManager() {
  {
    MutexLock lock(&retry_mu_);
    retry_stop_ = true;
  }
  retry_cv_.NotifyAll();
  if (retry_thread_.joinable()) retry_thread_.join();
}

void NetworkManager::ScheduleRetry(const std::string& city) {
  MutexLock lock(&retry_mu_);
  if (retry_stop_) return;
  auto it = retry_.find(city);
  if (it == retry_.end()) {
    // Seed the jitter per city so two cities failing together do not retry
    // in lockstep; deterministic across runs for testability.
    RetryState state{
        ExponentialBackoff(options_.reload_backoff,
                           static_cast<uint64_t>(std::hash<std::string>{}(
                               city))),
        {}};
    it = retry_.emplace(city, std::move(state)).first;
  }
  it->second.next_attempt =
      std::chrono::steady_clock::now() + it->second.backoff.NextDelay();
  if (!retry_thread_started_) {
    retry_thread_started_ = true;
    retry_thread_ = std::thread([this] { RetryLoop(); });
  }
  retry_cv_.NotifyAll();
}

void NetworkManager::ClearRetry(const std::string& city) {
  MutexLock lock(&retry_mu_);
  retry_.erase(city);
}

void NetworkManager::RetryLoop() {
  MutexLock lock(&retry_mu_);
  while (!retry_stop_) {
    if (retry_.empty()) {
      while (!retry_stop_ && retry_.empty()) retry_cv_.Wait(&retry_mu_);
      continue;
    }
    // Earliest pending attempt across cities.
    auto due = retry_.begin();
    for (auto it = std::next(retry_.begin()); it != retry_.end(); ++it) {
      if (it->second.next_attempt < due->second.next_attempt) due = it;
    }
    const auto when = due->second.next_attempt;
    if (std::chrono::steady_clock::now() < when) {
      retry_cv_.WaitUntil(&retry_mu_, when);
      continue;  // re-evaluate: stop flag, new failures, cleared cities
    }
    const std::string city = due->first;
    lock.Unlock();
    DataPlaneMetrics::Get().reload_retries.WithLabels({city}).Increment();
    ALTROUTE_LOG(Info) << "retrying reload of city '" << city << "'";
    // Reload itself reschedules on failure (advancing the backoff) and
    // clears the retry state on success.
    Status status = Reload(city);
    if (!status.ok()) {
      ALTROUTE_LOG(Warning) << "background reload retry of city '" << city
                            << "' failed: " << status;
    }
    lock.Lock();
  }
}

std::map<std::string, Status> NetworkManager::ReloadAll() {
  std::map<std::string, Status> outcomes;
  for (const std::string& city : cities()) {
    outcomes.emplace(city, Reload(city));
  }
  return outcomes;
}

std::vector<std::string> NetworkManager::cities() const {
  MutexLock lock(&mu_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [city, entry] : entries_) keys.push_back(city);
  return keys;
}

bool NetworkManager::Ready() const {
  MutexLock lock(&mu_);
  if (entries_.empty()) return false;
  for (const auto& [city, entry] : entries_) {
    MutexLock entry_lock(&entry->mu);  // lock order: mu_ -> entry->mu
    if (entry->snapshot == nullptr) return false;
  }
  return true;
}

size_t NetworkManager::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

void NetworkManager::RefreshGauges() const {
  MutexLock lock(&mu_);
  for (const auto& [city, entry] : entries_) {
    double age_seconds = -1.0;
    {
      MutexLock entry_lock(&entry->mu);  // lock order: mu_ -> entry->mu
      if (entry->snapshot == nullptr) continue;
      age_seconds = entry->snapshot->age_seconds();
    }
    DataPlaneMetrics::Get().snapshot_age.WithLabels({city}).Set(age_seconds);
  }
}

}  // namespace altroute
