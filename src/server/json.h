// Streaming JSON writer for the demo backend's responses. Writer-only by
// design: the demo's inbound data arrives as URL query parameters.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace altroute {

/// Emits syntactically valid JSON. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("routes"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string out = w.TakeString();
/// Misuse (e.g. a value where a key is required) is a programmer error and
/// asserts in debug builds.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices `json` verbatim as the next value. The caller vouches that it is
  /// a complete, valid JSON value (used to embed pre-rendered trace blocks).
  JsonWriter& RawValue(std::string_view json);

  /// The completed document. Precondition: all containers closed.
  std::string TakeString();

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string Escape(std::string_view s);

 private:
  void BeforeValue();

  std::ostringstream out_;
  // Container stack: 'O' object expecting key, 'o' object expecting value,
  // 'A' array.
  std::vector<char> stack_;
  bool first_in_container_ = true;
};

}  // namespace altroute
