// The demo backend's Query Processor (paper Sec. 3): geo-coordinate matching
// (snap clicks to the nearest network vertex), alternative-route computation
// with all four approaches, travel-time display under the OSM data for every
// approach, and identity-masked (A-D) JSON responses for the web UI.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine_registry.h"
#include "geo/spatial_index.h"
#include "obs/phase_timer.h"
#include "obs/search_stats.h"
#include "obs/trace.h"
#include "server/engine_breakers.h"
#include "util/deadline.h"

namespace altroute {

/// A single displayed route.
struct DisplayedRoute {
  /// Travel time under the OSM display weights, rounded to whole minutes
  /// exactly as the demo shows it (paper Sec. 3).
  int travel_time_min = 0;
  double length_km = 0.0;
  /// Geometry as a Google encoded polyline (the wire format the demo's
  /// Google-Maps-API front end consumes).
  std::string polyline;
};

/// One approach's routes, identity-masked.
struct ApproachDisplay {
  char label = 'A';  // masked identity shown to the participant
  std::vector<DisplayedRoute> routes;
  /// "ok" when the engine completed; otherwise the snake_case status code of
  /// its failure or truncation ("deadline_exceeded", "internal", ...), or
  /// "breaker_open" when the engine's circuit breaker rejected the run
  /// before it started. A degraded approach may still carry routes (partial
  /// result).
  std::string status = "ok";
  /// Human-readable detail when status != "ok".
  std::string message;

  // Forensics fields, filled by Process() for slow-query records and
  // /debug endpoints. NOT serialized into the participant-facing JSON:
  // engine_name would unmask the A-D identity blinding.
  std::string engine_name;
  double elapsed_ms = 0.0;
  obs::SearchStats stats;
};

/// The full response for a query.
struct QueryResponse {
  NodeId snapped_source = kInvalidNode;
  NodeId snapped_target = kInvalidNode;
  double snap_distance_source_m = 0.0;
  double snap_distance_target_m = 0.0;
  std::vector<ApproachDisplay> approaches;  // in masked order A-D
  /// True when at least one approach timed out or failed: the response is
  /// still served, with the surviving approaches intact.
  bool degraded = false;
};

/// Stateful processor over one city network. Not thread-safe: the engines
/// hold mutable search state, so concurrent serving uses one processor per
/// worker (see QueryProcessorPool) over the shared immutable network.
class QueryProcessor {
 public:
  /// Takes ownership of the suite and builds the snapping index.
  explicit QueryProcessor(EngineSuite suite);

  /// Shares a prebuilt snapping index (immutable after construction, safe
  /// to share across processors) instead of rebuilding it. `index` must
  /// index the suite's network coordinates.
  QueryProcessor(EngineSuite suite, std::shared_ptr<const SpatialIndex> index);

  /// Processes a query given raw clicked coordinates. Returns
  /// InvalidArgument for coordinates outside the study rectangle (plus a
  /// tolerance ring) and NotFound when no route exists. When `trace` is
  /// non-null, the snap and each engine run get a span carrying wall time
  /// and the engine's SearchStats. Global metrics (latency histograms and
  /// search counters, labeled by approach and city) record regardless.
  ///
  /// `deadline` bounds the whole request. The remaining budget is sliced
  /// evenly across the engines still to run; an engine that exhausts its
  /// slice (or errors) is reported degraded while the others still ship.
  /// Only when the *request* deadline is spent before an engine can start
  /// does the call fail with DeadlineExceeded (the server answers 504). All
  /// four engines failing returns the first failure's status.
  ///
  /// A non-null `profile` receives the phase breakdown ("snap", one
  /// "engine:<name>" per engine, "render"); null costs nothing.
  Result<QueryResponse> Process(const LatLng& source, const LatLng& target,
                                obs::Trace* trace = nullptr,
                                Deadline deadline = {},
                                obs::RequestProfile* profile = nullptr);

  /// Serialises a response to JSON for the web UI. A non-null `trace`
  /// contributes an extra "trace" member with the recorded span tree. A
  /// non-null `profile` times serialization as the "serialize" phase and —
  /// when `trace` is also non-null (?trace=1) — embeds the phase breakdown
  /// as a "phases" member. A non-empty `request_id` is echoed as a
  /// top-level "request_id" member.
  std::string ToJson(const QueryResponse& response,
                     const obs::Trace* trace = nullptr,
                     obs::RequestProfile* profile = nullptr,
                     std::string_view request_id = {}) const;

  /// Snaps the clicked coordinates and runs ONE approach, returning the raw
  /// route set (for directions/GeoJSON endpoints that need geometry).
  Result<AlternativeSet> GenerateFor(const LatLng& source, const LatLng& target,
                                     Approach approach,
                                     obs::SearchStats* stats = nullptr,
                                     Deadline deadline = {});

  const RoadNetwork& network() const { return suite_.network(); }

  /// Maximum distance a click may be from the nearest vertex (meters).
  double max_snap_distance_m() const { return max_snap_distance_m_; }
  void set_max_snap_distance_m(double d) { max_snap_distance_m_ = d; }

  /// Ramer-Douglas-Peucker tolerance applied to route geometry before
  /// polyline encoding; 0 (default) ships the exact geometry.
  double polyline_tolerance_m() const { return polyline_tolerance_m_; }
  void set_polyline_tolerance_m(double d) { polyline_tolerance_m_ = d; }

  /// Attaches per-engine circuit breakers (shared across all processors
  /// serving one city — engine health is per data plane, not per worker).
  /// Null (the default) disables breaker checks entirely: every engine runs
  /// on every request, as before. Process() consults the breaker before each
  /// engine: a rejected engine is skipped with status "breaker_open" and its
  /// budget slice is redistributed to the engines still admitted; each
  /// admitted run reports success or failure back (see
  /// EngineBreakerSet::CountsAsFailure for what trips it).
  void set_breakers(std::shared_ptr<EngineBreakerSet> breakers) {
    breakers_ = std::move(breakers);
  }
  const std::shared_ptr<EngineBreakerSet>& breakers() const {
    return breakers_;
  }

 private:
  EngineSuite suite_;
  std::shared_ptr<const SpatialIndex> index_;
  std::shared_ptr<EngineBreakerSet> breakers_;
  double max_snap_distance_m_ = 2000.0;
  double polyline_tolerance_m_ = 0.0;
};

}  // namespace altroute
