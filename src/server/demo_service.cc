#include "server/demo_service.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/directions.h"
#include "server/json.h"
#include "util/string_util.h"

namespace altroute {

DemoService::DemoService(std::unique_ptr<QueryProcessorPool> pool)
    : pool_(std::move(pool)) {}

DemoService::DemoService(std::unique_ptr<QueryProcessor> processor)
    : pool_(std::make_unique<QueryProcessorPool>([&] {
        std::vector<std::unique_ptr<QueryProcessor>> contexts;
        contexts.push_back(std::move(processor));
        return contexts;
      }())) {}

void DemoService::Install(HttpServer* server) {
  server->Route("/", [this](const HttpRequest& r) { return HandleIndex(r); });
  server->Route("/route",
                [this](const HttpRequest& r) { return HandleRoute(r); });
  server->Route("/directions",
                [this](const HttpRequest& r) { return HandleDirections(r); });
  server->Route("/rate", [this](const HttpRequest& r) { return HandleRate(r); });
  server->Route("/stats",
                [this](const HttpRequest& r) { return HandleStats(r); });
  server->Route("/metrics",
                [this](const HttpRequest& r) { return HandleMetrics(r); });
}

namespace {

/// Fetches a required double query parameter.
Result<double> QueryDouble(const HttpRequest& req, const std::string& key) {
  auto it = req.query.find(key);
  if (it == req.query.end()) {
    return Status::InvalidArgument("missing parameter '" + key + "'");
  }
  return ParseDouble(it->second);
}

}  // namespace

HttpResponse DemoService::HandleRoute(const HttpRequest& req) {
  auto slat = QueryDouble(req, "slat");
  auto slng = QueryDouble(req, "slng");
  auto tlat = QueryDouble(req, "tlat");
  auto tlng = QueryDouble(req, "tlng");
  for (const auto* p : {&slat, &slng, &tlat, &tlng}) {
    if (!p->ok()) return HttpResponse::Error(400, p->status().ToString());
  }
  const auto trace_it = req.query.find("trace");
  const bool want_trace = trace_it != req.query.end() &&
                          trace_it->second == "1";
  obs::Trace trace;
  QueryProcessorPool::Lease processor = pool_->Acquire();
  auto response = processor->Process(LatLng(*slat, *slng),
                                     LatLng(*tlat, *tlng),
                                     want_trace ? &trace : nullptr,
                                     req.deadline);
  if (!response.ok()) {
    // Semantic failures map by status code: snap failures 422, no route
    // 404, spent request deadline 504 (see HttpStatusForStatusCode).
    return HttpResponse::FromStatus(response.status());
  }
  return HttpResponse::Json(
      processor->ToJson(*response, want_trace ? &trace : nullptr));
}

HttpResponse DemoService::HandleDirections(const HttpRequest& req) {
  auto slat = QueryDouble(req, "slat");
  auto slng = QueryDouble(req, "slng");
  auto tlat = QueryDouble(req, "tlat");
  auto tlng = QueryDouble(req, "tlng");
  for (const auto* p : {&slat, &slng, &tlat, &tlng}) {
    if (!p->ok()) return HttpResponse::Error(400, p->status().ToString());
  }
  auto label_it = req.query.find("label");
  const std::string label = label_it == req.query.end() ? "B" : label_it->second;
  if (label.size() != 1 || label[0] < 'A' ||
      label[0] >= 'A' + kNumApproaches) {
    return HttpResponse::Error(400, "label must be one of A-D");
  }
  const auto approach = static_cast<Approach>(label[0] - 'A');

  QueryProcessorPool::Lease processor = pool_->Acquire();
  auto set = processor->GenerateFor(LatLng(*slat, *slng),
                                    LatLng(*tlat, *tlng), approach,
                                    /*stats=*/nullptr, req.deadline);
  if (!set.ok()) {
    return HttpResponse::FromStatus(set.status());
  }
  if (set->routes.empty()) return HttpResponse::Error(404, "no route found");

  JsonWriter w;
  w.BeginObject();
  w.Key("label").String(label);
  w.Key("steps").BeginArray();
  for (const DirectionStep& step :
       BuildDirections(processor->network(), set->routes[0])) {
    w.BeginObject();
    w.Key("maneuver").String(std::string(ManeuverName(step.maneuver)));
    w.Key("text").String(step.text);
    w.Key("distance_m").Number(step.distance_m);
    w.Key("duration_s").Number(step.duration_s);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleRate(const HttpRequest& req) {
  RatingSubmission submission;
  const char* keys[kNumApproaches] = {"a", "b", "c", "d"};
  for (int i = 0; i < kNumApproaches; ++i) {
    auto it = req.query.find(keys[i]);
    if (it == req.query.end()) {
      return HttpResponse::Error(400, std::string("missing rating '") +
                                          keys[i] + "'");
    }
    auto v = ParseInt64(it->second);
    if (!v.ok()) return HttpResponse::Error(400, v.status().ToString());
    submission.ratings[static_cast<size_t>(i)] = static_cast<int>(*v);
  }
  if (auto it = req.query.find("resident"); it != req.query.end()) {
    submission.melbourne_resident = (it->second == "1" || it->second == "yes");
  }
  if (auto it = req.query.find("comment"); it != req.query.end()) {
    submission.comment = it->second;
  }
  const Status st = ratings_.Add(submission);
  if (st.IsInvalidArgument()) return HttpResponse::Error(400, st.ToString());
  // Persistence failures (IOError when a ratings file is attached) are the
  // server's fault, not the client's: 500, not 4xx.
  if (!st.ok()) return HttpResponse::FromStatus(st);

  JsonWriter w;
  w.BeginObject();
  w.Key("stored").Bool(true);
  w.Key("total_submissions").Int(static_cast<int64_t>(ratings_.size()));
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleStats(const HttpRequest&) const {
  const auto means = ratings_.MeanRatings();
  JsonWriter w;
  w.BeginObject();
  w.Key("submissions").Int(static_cast<int64_t>(ratings_.size()));
  w.Key("mean_ratings").BeginObject();
  const char* keys[kNumApproaches] = {"A", "B", "C", "D"};
  for (int i = 0; i < kNumApproaches; ++i) {
    w.Key(keys[i]).Number(means[static_cast<size_t>(i)]);
  }
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleMetrics(const HttpRequest&) const {
  HttpResponse r;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = obs::MetricsRegistry::Global().ExposePrometheus();
  return r;
}

HttpResponse DemoService::HandleIndex(const HttpRequest&) const {
  HttpResponse r;
  r.content_type = "text/html";
  r.body =
      "<!doctype html><html><head><title>Alternative Route Planning "
      "Demo</title></head><body>"
      "<h1>Comparing Alternative Route Planning Techniques</h1>"
      "<p>Pick a source and target inside the study area, then call "
      "<code>/route?slat=&amp;slng=&amp;tlat=&amp;tlng=</code>. Four route "
      "sets labelled A&ndash;D are returned; the identities of the "
      "approaches are masked to avoid bias. Rate each approach from 1 "
      "(worst) to 5 (best) via <code>/rate?a=&amp;b=&amp;c=&amp;d=&amp;"
      "resident=</code>.</p>"
      "<p>Network: " +
      pool_->network().name() + ", " +
      std::to_string(pool_->network().num_nodes()) + " vertices, " +
      std::to_string(pool_->network().num_edges()) +
      " edges.</p></body></html>";
  return r;
}

}  // namespace altroute
