#include "server/demo_service.h"

#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/directions.h"
#include "server/json.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace altroute {

namespace {

/// The performance-attribution instruments, registered once and cached.
struct AttributionMetrics {
  obs::HistogramFamily& phase_seconds;
  obs::Counter& slow_queries;

  static AttributionMetrics& Get() {
    static AttributionMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new AttributionMetrics{
          // Phase label cardinality is bounded: the fixed taxonomy
          // (queue_wait, snapshot_acquire, snap, render, serialize) plus
          // one "engine:<name>" per registered engine.
          reg.GetHistogramFamily(
              "altroute_request_phase_seconds",
              "Wall time of one request phase (per-phase latency "
              "attribution of /route).",
              {"phase"},
              // 10 us .. ~5 s in geometric steps of 2.
              obs::ExponentialBuckets(1e-5, 2.0, 20)),
          reg.GetCounter(
              "altroute_slow_queries_total",
              "Requests slower than the --slow-query-ms threshold."),
      };
    }();
    return *m;
  }
};

/// City key for the single-pool convenience constructors: the network's
/// display name lowercased ("Melbourne" -> "melbourne").
std::string DefaultCityKey(const QueryProcessorPool& pool) {
  const std::string key = ToLower(pool.network().name());
  return key.empty() ? "default" : key;
}

std::shared_ptr<NetworkManager> ManagerFromPool(
    std::unique_ptr<QueryProcessorPool> pool) {
  auto manager = std::make_shared<NetworkManager>();
  const std::string city = DefaultCityKey(*pool);
  const Status st = manager->AddCityWithPool(
      city, std::shared_ptr<QueryProcessorPool>(std::move(pool)));
  ALT_CHECK_OK(st);
  return manager;
}

}  // namespace

DemoService::DemoService(std::shared_ptr<NetworkManager> manager)
    : manager_(std::move(manager)) {
  ALT_CHECK(manager_ != nullptr) << "null network manager";
}

DemoService::DemoService(std::unique_ptr<QueryProcessorPool> pool)
    : manager_(ManagerFromPool(std::move(pool))) {}

DemoService::DemoService(std::unique_ptr<QueryProcessor> processor)
    : manager_(ManagerFromPool(std::make_unique<QueryProcessorPool>([&] {
        std::vector<std::unique_ptr<QueryProcessor>> contexts;
        contexts.push_back(std::move(processor));
        return contexts;
      }()))) {}

void DemoService::Install(HttpServer* server) {
  server->Route("/", [this](const HttpRequest& r) { return HandleIndex(r); });
  server->Route("/route",
                [this](const HttpRequest& r) { return HandleRoute(r); });
  server->Route("/directions",
                [this](const HttpRequest& r) { return HandleDirections(r); });
  server->Route("/rate", [this](const HttpRequest& r) { return HandleRate(r); });
  server->Route("/stats",
                [this](const HttpRequest& r) { return HandleStats(r); });
  server->Route("/metrics",
                [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Route("/healthz",
                [this](const HttpRequest& r) { return HandleHealthz(r); });
  server->Route("/readyz",
                [this](const HttpRequest& r) { return HandleReadyz(r); });
  server->Route("/admin/reload",
                [this](const HttpRequest& r) { return HandleReload(r); });
  server->Route("/debug/slow",
                [this](const HttpRequest& r) { return HandleDebugSlow(r); });
  server->Route("/debug/requests", [this](const HttpRequest& r) {
    return HandleDebugRequests(r);
  });
  server->Route("/debug/build",
                [this](const HttpRequest& r) { return HandleDebugBuild(r); });
}

namespace {

/// Fetches a required double query parameter.
Result<double> QueryDouble(const HttpRequest& req, const std::string& key) {
  auto it = req.query.find(key);
  if (it == req.query.end()) {
    return Status::InvalidArgument("missing parameter '" + key + "'");
  }
  return ParseDouble(it->second);
}

}  // namespace

Result<std::shared_ptr<const NetworkSnapshot>> DemoService::ResolveSnapshot(
    const HttpRequest& req) const {
  if (auto it = req.query.find("city"); it != req.query.end()) {
    return manager_->GetSnapshot(it->second);
  }
  const std::vector<std::string> cities = manager_->cities();
  if (cities.empty()) {
    // Not a client mistake: the service has no data plane yet. 503 via
    // FailedPrecondition, so probes and retries treat it as "not ready".
    return Status::FailedPrecondition("no cities configured");
  }
  if (cities.size() == 1) return manager_->GetSnapshot(cities.front());
  std::string known;
  for (const std::string& city : cities) {
    if (!known.empty()) known += ", ";
    known += city;
  }
  return Status::InvalidArgument(
      "several cities are served; pass ?city= one of: " + known);
}

HttpResponse DemoService::HandleRoute(const HttpRequest& req) {
  obs::RequestProfile profile;
  // Queue wait was measured by the HTTP layer before this handler existed;
  // record it as a preceding phase so it counts into the total too.
  if (req.queue_wait_s > 0.0) {
    profile.RecordPreceding("queue_wait", req.queue_wait_s);
  }

  obs::PhaseTimer resolve_phase(&profile, "snapshot_acquire");
  auto snapshot = ResolveSnapshot(req);
  resolve_phase.End();
  if (!snapshot.ok()) {
    // InvalidArgument here is a missing parameter, not bad content: 400.
    if (snapshot.status().IsInvalidArgument()) {
      return HttpResponse::Error(400, snapshot.status().message(),
                                 req.request_id);
    }
    return HttpResponse::FromStatus(snapshot.status(), req.request_id);
  }
  auto slat = QueryDouble(req, "slat");
  auto slng = QueryDouble(req, "slng");
  auto tlat = QueryDouble(req, "tlat");
  auto tlng = QueryDouble(req, "tlng");
  for (const auto* p : {&slat, &slng, &tlat, &tlng}) {
    if (!p->ok()) {
      return HttpResponse::Error(400, p->status().ToString(), req.request_id);
    }
  }
  const auto trace_it = req.query.find("trace");
  const bool want_trace = trace_it != req.query.end() &&
                          trace_it->second == "1";
  obs::Trace trace;
  // The snapshot shared_ptr is held for the whole request: a reload swap
  // that lands mid-query retires this generation only after we return.
  // Waiting for a pool context accumulates into "snapshot_acquire" next to
  // the resolve above: both are time spent obtaining the data plane.
  obs::PhaseTimer lease_phase(&profile, "snapshot_acquire");
  QueryProcessorPool::Lease processor = (*snapshot)->pool->Acquire();
  lease_phase.End();
  auto response = processor->Process(LatLng(*slat, *slng),
                                     LatLng(*tlat, *tlng),
                                     want_trace ? &trace : nullptr,
                                     req.deadline, &profile);
  const std::string& city = (*snapshot)->network().name();
  if (!response.ok()) {
    // Semantic failures map by status code: snap failures 422, no route
    // 404, spent request deadline 504 (see HttpStatusForStatusCode). They
    // still feed the forensics log: a slow failure is still slow.
    RecordRouteForensics(req, city, nullptr, profile);
    return HttpResponse::FromStatus(response.status(), req.request_id);
  }
  // Chaos site "serialize": a failure here models the response encoder
  // breaking after a successful computation — the request still answers,
  // with the fault's status instead of a body it cannot produce.
  Status serialize_fault = FaultInjector::Global().Check("serialize");
  if (!serialize_fault.ok()) {
    RecordRouteForensics(req, city, &*response, profile);
    return HttpResponse::FromStatus(serialize_fault, req.request_id);
  }
  HttpResponse ok = HttpResponse::Json(
      processor->ToJson(*response, want_trace ? &trace : nullptr, &profile,
                        req.request_id));
  RecordRouteForensics(req, city, &*response, profile);
  return ok;
}

void DemoService::RecordRouteForensics(const HttpRequest& req,
                                       const std::string& city,
                                       const QueryResponse* response,
                                       const obs::RequestProfile& profile) {
  AttributionMetrics& metrics = AttributionMetrics::Get();
  for (const obs::RequestProfile::Phase& phase : profile.phases()) {
    metrics.phase_seconds.WithLabels({phase.name}).Observe(phase.seconds);
  }

  SlowQueryRecord record;
  record.request_id = req.request_id;
  record.city = city;
  // Copy only the route parameters we understand: the record must stay
  // bounded and free of arbitrary client input.
  for (const char* key : {"slat", "slng", "tlat", "tlng", "city", "trace"}) {
    if (auto it = req.query.find(key); it != req.query.end()) {
      record.params[key] = it->second;
    }
  }
  record.total_ms = profile.TotalSeconds() * 1e3;
  for (const obs::RequestProfile::Phase& phase : profile.phases()) {
    record.phases.emplace_back(phase.name, phase.seconds * 1e3);
  }
  if (response != nullptr) {
    record.degraded = response->degraded;
    for (const ApproachDisplay& ad : response->approaches) {
      record.engines.push_back(
          SlowQueryEngine{ad.engine_name, ad.status, ad.elapsed_ms, ad.stats});
    }
  } else {
    // Process() failed outright; there is no per-engine story to tell.
    record.degraded = true;
  }
  record.budget_remaining_ms = req.deadline.is_infinite()
                                   ? -1.0
                                   : req.deadline.RemainingSeconds() * 1e3;
  if (slow_queries_.Add(record)) metrics.slow_queries.Increment();
}

HttpResponse DemoService::HandleDirections(const HttpRequest& req) {
  auto snapshot = ResolveSnapshot(req);
  if (!snapshot.ok()) {
    if (snapshot.status().IsInvalidArgument()) {
      return HttpResponse::Error(400, snapshot.status().message(),
                                 req.request_id);
    }
    return HttpResponse::FromStatus(snapshot.status(), req.request_id);
  }
  auto slat = QueryDouble(req, "slat");
  auto slng = QueryDouble(req, "slng");
  auto tlat = QueryDouble(req, "tlat");
  auto tlng = QueryDouble(req, "tlng");
  for (const auto* p : {&slat, &slng, &tlat, &tlng}) {
    if (!p->ok()) {
      return HttpResponse::Error(400, p->status().ToString(), req.request_id);
    }
  }
  auto label_it = req.query.find("label");
  const std::string label = label_it == req.query.end() ? "B" : label_it->second;
  if (label.size() != 1 || label[0] < 'A' ||
      label[0] >= 'A' + kNumApproaches) {
    return HttpResponse::Error(400, "label must be one of A-D",
                               req.request_id);
  }
  const auto approach = static_cast<Approach>(label[0] - 'A');

  QueryProcessorPool::Lease processor = (*snapshot)->pool->Acquire();
  auto set = processor->GenerateFor(LatLng(*slat, *slng),
                                    LatLng(*tlat, *tlng), approach,
                                    /*stats=*/nullptr, req.deadline);
  if (!set.ok()) {
    return HttpResponse::FromStatus(set.status(), req.request_id);
  }
  if (set->routes.empty()) {
    return HttpResponse::Error(404, "no route found", req.request_id);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("label").String(label);
  w.Key("steps").BeginArray();
  for (const DirectionStep& step :
       BuildDirections(processor->network(), set->routes[0])) {
    w.BeginObject();
    w.Key("maneuver").String(std::string(ManeuverName(step.maneuver)));
    w.Key("text").String(step.text);
    w.Key("distance_m").Number(step.distance_m);
    w.Key("duration_s").Number(step.duration_s);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleRate(const HttpRequest& req) {
  RatingSubmission submission;
  const char* keys[kNumApproaches] = {"a", "b", "c", "d"};
  for (int i = 0; i < kNumApproaches; ++i) {
    auto it = req.query.find(keys[i]);
    if (it == req.query.end()) {
      return HttpResponse::Error(400, std::string("missing rating '") +
                                          keys[i] + "'");
    }
    auto v = ParseInt64(it->second);
    if (!v.ok()) return HttpResponse::Error(400, v.status().ToString());
    submission.ratings[static_cast<size_t>(i)] = static_cast<int>(*v);
  }
  if (auto it = req.query.find("resident"); it != req.query.end()) {
    submission.melbourne_resident = (it->second == "1" || it->second == "yes");
  }
  if (auto it = req.query.find("comment"); it != req.query.end()) {
    submission.comment = it->second;
  }
  const Status st = ratings_.Add(submission);
  if (st.IsInvalidArgument()) return HttpResponse::Error(400, st.ToString());
  // Persistence failures (IOError when a ratings file is attached) are the
  // server's fault, not the client's: 500, not 4xx.
  if (!st.ok()) return HttpResponse::FromStatus(st);

  JsonWriter w;
  w.BeginObject();
  w.Key("stored").Bool(true);
  w.Key("total_submissions").Int(static_cast<int64_t>(ratings_.size()));
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleStats(const HttpRequest&) const {
  const auto means = ratings_.MeanRatings();
  JsonWriter w;
  w.BeginObject();
  w.Key("submissions").Int(static_cast<int64_t>(ratings_.size()));
  w.Key("mean_ratings").BeginObject();
  const char* keys[kNumApproaches] = {"A", "B", "C", "D"};
  for (int i = 0; i < kNumApproaches; ++i) {
    w.Key(keys[i]).Number(means[static_cast<size_t>(i)]);
  }
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleMetrics(const HttpRequest&) const {
  // Age gauges are point-in-time; refresh them at scrape so
  // altroute_network_snapshot_age_seconds grows between reloads.
  manager_->RefreshGauges();
  HttpResponse r;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = obs::MetricsRegistry::Global().ExposePrometheus();
  return r;
}

HttpResponse DemoService::HandleHealthz(const HttpRequest&) const {
  // Liveness only: the process is up and serving HTTP. Data-plane state is
  // /readyz's job — a load balancer must not kill a pod whose reload failed.
  HttpResponse r;
  r.content_type = "text/plain";
  r.body = "ok\n";
  return r;
}

HttpResponse DemoService::HandleReadyz(const HttpRequest&) const {
  const bool ready = manager_->Ready();
  JsonWriter w;
  w.BeginObject();
  w.Key("ready").Bool(ready);
  w.Key("cities").BeginObject();
  for (const std::string& city : manager_->cities()) {
    auto snapshot = manager_->GetSnapshot(city);
    w.Key(city).BeginObject();
    w.Key("ready").Bool(snapshot.ok());
    if (snapshot.ok()) {
      w.Key("generation").Int(static_cast<int64_t>((*snapshot)->generation));
      w.Key("age_seconds").Number((*snapshot)->age_seconds());
      w.Key("nodes").Int(static_cast<int64_t>((*snapshot)->network().num_nodes()));
      w.Key("ch").Bool((*snapshot)->ch != nullptr);
    }
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  HttpResponse r = HttpResponse::Json(w.TakeString());
  if (!ready) r.status = 503;
  return r;
}

HttpResponse DemoService::HandleReload(const HttpRequest& req) {
  if (req.method != "POST") {
    return HttpResponse::Error(405, "reload requires POST");
  }
  std::map<std::string, Status> outcomes;
  if (auto it = req.query.find("city"); it != req.query.end()) {
    const Status st = manager_->Reload(it->second);
    if (st.IsNotFound()) return HttpResponse::FromStatus(st);
    outcomes.emplace(it->second, st);
  } else {
    outcomes = manager_->ReloadAll();
  }
  bool all_ok = true;
  JsonWriter w;
  w.BeginObject();
  w.Key("reloads").BeginObject();
  for (const auto& [city, st] : outcomes) {
    w.Key(city).BeginObject();
    w.Key("outcome").String(st.ok() ? "success" : "failed");
    if (!st.ok()) {
      all_ok = false;
      w.Key("error").String(st.ToString());
    }
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  HttpResponse r = HttpResponse::Json(w.TakeString());
  // A failed reload never took the old snapshot down, but the caller asked
  // for a swap that did not happen, so a failure must surface to automation.
  // A single-city reload maps its cause (no reload loader /
  // FailedPrecondition -> 503, failed load or validation -> 500); a bulk
  // reload with any failure is 500.
  if (!all_ok) {
    r.status = outcomes.size() == 1
                   ? HttpStatusForStatusCode(outcomes.begin()->second.code())
                   : 500;
  }
  return r;
}

namespace {

/// Shared shape of /debug/slow and /debug/requests: a records array of
/// SlowQueryRecord JSON (the same layout the JSONL log persists).
HttpResponse DebugRecordsResponse(const char* kind,
                                  const std::vector<SlowQueryRecord>& records,
                                  const SlowQueryLog& log) {
  JsonWriter w;
  w.BeginObject();
  w.Key("kind").String(kind);
  w.Key("threshold_ms").Number(log.options().threshold_ms);
  w.Key("offenders_total")
      .Int(static_cast<int64_t>(log.offenders_total()));
  w.Key("records").BeginArray();
  for (const SlowQueryRecord& r : records) {
    w.RawValue(SlowQueryRecordToJsonLine(r));
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

}  // namespace

HttpResponse DemoService::HandleDebugSlow(const HttpRequest&) const {
  return DebugRecordsResponse("slow", slow_queries_.Worst(), slow_queries_);
}

HttpResponse DemoService::HandleDebugRequests(const HttpRequest&) const {
  return DebugRecordsResponse("recent", slow_queries_.Recent(), slow_queries_);
}

HttpResponse DemoService::HandleDebugBuild(const HttpRequest&) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("compiler").String(__VERSION__);
#ifdef NDEBUG
  w.Key("build_type").String("release");
#else
  w.Key("build_type").String("debug");
#endif
  w.Key("cxx_standard").Int(static_cast<int64_t>(__cplusplus));
  w.Key("bench_schema_version").Int(obs::kBenchSchemaVersion);
  w.Key("uptime_seconds")
      .Number(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start_time_)
                  .count());
  w.Key("cities").BeginObject();
  for (const std::string& city : manager_->cities()) {
    auto snapshot = manager_->GetSnapshot(city);
    w.Key(city).BeginObject();
    w.Key("ready").Bool(snapshot.ok());
    if (snapshot.ok()) {
      w.Key("generation").Int(static_cast<int64_t>((*snapshot)->generation));
      w.Key("nodes").Int(
          static_cast<int64_t>((*snapshot)->network().num_nodes()));
      w.Key("edges").Int(
          static_cast<int64_t>((*snapshot)->network().num_edges()));
      // CH preprocessing state of this generation: whether the CH-backed
      // engines are live, and what the (off-serving-path) build cost.
      w.Key("ch").Bool((*snapshot)->ch != nullptr);
      if ((*snapshot)->ch != nullptr) {
        w.Key("ch_build_seconds").Number((*snapshot)->ch_build_seconds);
        w.Key("ch_shortcuts").Int(
            static_cast<int64_t>((*snapshot)->ch->num_shortcuts()));
      }
    }
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(w.TakeString());
}

HttpResponse DemoService::HandleIndex(const HttpRequest&) const {
  std::string cities_html;
  for (const std::string& city : manager_->cities()) {
    auto snapshot = manager_->GetSnapshot(city);
    if (!snapshot.ok()) continue;
    // City keys and network names are operator-controlled (a --net file
    // basename becomes the key) but still must not inject markup.
    cities_html += "<li><code>" + HtmlEscape(city) + "</code>: " +
                   HtmlEscape((*snapshot)->network().name()) + ", " +
                   std::to_string((*snapshot)->network().num_nodes()) +
                   " vertices, " +
                   std::to_string((*snapshot)->network().num_edges()) +
                   " edges (generation " +
                   std::to_string((*snapshot)->generation) + ")</li>";
  }
  HttpResponse r;
  r.content_type = "text/html";
  r.body =
      "<!doctype html><html><head><title>Alternative Route Planning "
      "Demo</title></head><body>"
      "<h1>Comparing Alternative Route Planning Techniques</h1>"
      "<p>Pick a source and target inside the study area, then call "
      "<code>/route?slat=&amp;slng=&amp;tlat=&amp;tlng=</code> (add "
      "<code>&amp;city=</code> when several cities are served). Four route "
      "sets labelled A&ndash;D are returned; the identities of the "
      "approaches are masked to avoid bias. Rate each approach from 1 "
      "(worst) to 5 (best) via <code>/rate?a=&amp;b=&amp;c=&amp;d=&amp;"
      "resident=</code>.</p>"
      "<p>Served cities:</p><ul>" +
      cities_html + "</ul></body></html>";
  return r;
}

}  // namespace altroute
