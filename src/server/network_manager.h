// NetworkManager: the serving data plane. Owns an atomic last-known-good
// snapshot per city — the immutable RoadNetwork plus everything derived from
// it (spatial snapping index, display weights, per-worker engine contexts,
// all inside a QueryProcessorPool) — and the machinery to replace a snapshot
// without dropping traffic:
//
//   AddCity(city, loader)   load -> validate (GraphValidator) -> build pool
//   GetSnapshot(city)       lock-cheap shared_ptr copy; handlers hold it for
//                           the request, so a concurrent swap never frees a
//                           network out from under an in-flight query
//   Reload(city)            re-runs the loader OFF the serving path (on the
//                           caller's thread), validates, then atomically
//                           swaps; ANY failure leaves the old snapshot
//                           serving and is reported, never a crash or a gap
//
// Lifecycle metrics: altroute_network_reloads_total{city,outcome},
// altroute_network_snapshot_age_seconds{city} (refreshed on scrape via
// RefreshGauges), altroute_network_validation_failures_total{city,check}.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/validator.h"
#include "server/query_processor_pool.h"
#include "util/backoff.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace altroute {

/// One immutable, validated generation of a city's serving state. Handlers
/// copy the shared_ptr (GetSnapshot) and keep it for the whole request; the
/// previous generation is destroyed only when its last in-flight request
/// finishes.
struct NetworkSnapshot {
  std::shared_ptr<QueryProcessorPool> pool;
  /// 1 for the startup load, incremented by every successful reload.
  uint64_t generation = 0;
  std::chrono::steady_clock::time_point loaded_at;
  /// Contraction hierarchy the pool's CH-backed engines run on; null when
  /// the data plane was built without Options::build_ch. Rebuilt from
  /// scratch on every reload (the hierarchy is valid for exactly one
  /// network + weight generation).
  std::shared_ptr<const ContractionHierarchy> ch;
  /// Wall seconds spent building `ch` for this generation (0 when absent);
  /// surfaced in /readyz and /debug/build so preprocessing cost stays
  /// visible per swap.
  double ch_build_seconds = 0.0;
  /// Per-engine circuit breakers shared by every context in `pool`; null
  /// when the manager was built without Options::enable_breakers. Created
  /// fresh per snapshot: a reload resets breaker state (new data plane, new
  /// health record).
  std::shared_ptr<EngineBreakerSet> breakers;

  const RoadNetwork& network() const { return pool->network(); }
  double age_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         loaded_at)
        .count();
  }
};

class NetworkManager {
 public:
  struct Options {
    /// Query contexts per city (one per HTTP worker in `serve`).
    size_t contexts_per_city = 1;
    /// Gate applied to every load and reload.
    ValidationOptions validation;
    /// Build a contraction hierarchy per snapshot (off the serving path,
    /// like the rest of the load) and hand the CH-backed Plateau/Penalty
    /// engines to every query context. A CH build failure fails the whole
    /// snapshot build: on reload the old snapshot keeps serving.
    bool build_ch = false;
    /// Preprocessing knobs used when build_ch is set.
    ChOptions ch_options;
    /// Attach a per-(city, engine) circuit-breaker set to every query
    /// context (see EngineBreakerSet). Off by default: library users and
    /// tests that build a manager directly keep the old always-run
    /// behavior; `serve` turns it on.
    bool enable_breakers = false;
    /// Thresholds shared by every breaker when enable_breakers is set.
    CircuitBreakerOptions breaker;
    /// Clock handed to every breaker (tests inject a fake one to drive
    /// cooldowns deterministically); null = steady clock.
    CircuitBreaker::ClockFn breaker_clock;
    /// Retry failed reloads in the background with exponential backoff
    /// (jittered, capped — see BackoffOptions) until one succeeds. Covers
    /// CH build failures too: they fail the snapshot build, which is what
    /// gets retried. Startup loads (AddCity) still fail fast — there is no
    /// old snapshot to serve meanwhile.
    bool retry_failed_reloads = false;
    BackoffOptions reload_backoff;
  };

  /// Produces a fresh RoadNetwork — from a file, a citygen spec, whatever.
  /// Re-invoked on every reload, so a file-backed loader re-reads the file.
  using Loader =
      std::function<Result<std::shared_ptr<RoadNetwork>>()>;

  // Two constructors instead of one defaulted argument: GCC rejects `= {}`
  // for a nested aggregate with default member initializers here.
  NetworkManager() : NetworkManager(Options()) {}
  explicit NetworkManager(Options options) : options_(std::move(options)) {}

  /// Stops and joins the background retry thread, if one was started.
  ~NetworkManager();

  NetworkManager(const NetworkManager&) = delete;
  NetworkManager& operator=(const NetworkManager&) = delete;

  /// Registers `city` and performs the initial load+validate+build. On
  /// failure the city is not added (startup should abort; there is no old
  /// snapshot to fall back on). City keys are case-sensitive and unique.
  Status AddCity(const std::string& city, Loader loader);

  /// Adopts a prebuilt pool as `city`'s snapshot (tests, single-network
  /// tools). Without a loader, Reload returns FailedPrecondition.
  Status AddCityWithPool(const std::string& city,
                         std::shared_ptr<QueryProcessorPool> pool);

  /// The city's current snapshot; NotFound for unknown cities. Cheap: one
  /// mutex-guarded shared_ptr copy.
  Result<std::shared_ptr<const NetworkSnapshot>> GetSnapshot(
      const std::string& city) const;

  /// Rebuilds `city` from its loader on the calling thread, validates, and
  /// atomically swaps the snapshot. On any failure (load error, validation
  /// reject, pool build error) the old snapshot keeps serving and the error
  /// is returned. Concurrent reloads of the same city serialise; reloads of
  /// different cities proceed in parallel; serving is never blocked.
  ///
  /// With Options::retry_failed_reloads, a failure additionally schedules a
  /// background retry (exponential backoff, altroute_reload_retries_total);
  /// a later success — background or explicit — clears the retry state.
  Status Reload(const std::string& city);

  /// Reloads every city (SIGHUP semantics); per-city outcomes.
  std::map<std::string, Status> ReloadAll();

  /// Registered city keys, sorted.
  std::vector<std::string> cities() const;

  /// True when every registered city has a valid snapshot — the /readyz
  /// contract.
  bool Ready() const;

  size_t size() const;

  /// Updates altroute_network_snapshot_age_seconds{city} from the current
  /// snapshots; call before rendering /metrics.
  void RefreshGauges() const;

 private:
  /// Lock order within one entry (and across the manager): mu_ (map lookup)
  /// -> entry->mu (snapshot copy/swap). reload_mu is held across the whole
  /// rebuild and only ever takes entry->mu inside it, never mu_ while a
  /// serving thread could hold entry->mu.
  struct Entry {
    Loader loader;  // may be empty (AddCityWithPool); immutable once published
    /// Serialises reloads of this city (held across the whole rebuild, which
    /// runs outside `mu` so serving threads never wait on it).
    Mutex reload_mu;
    /// Guards only the snapshot pointer: one copy per GetSnapshot, one swap
    /// per successful reload. Never held across a build.
    mutable Mutex mu;
    std::shared_ptr<const NetworkSnapshot> snapshot ALT_GUARDED_BY(mu);
  };

  /// load -> validate -> pool; counts validation failures per check.
  Result<std::shared_ptr<const NetworkSnapshot>> BuildSnapshot(
      const std::string& city, const Loader& loader, uint64_t generation) const;

  /// Backoff state for one city whose last reload failed.
  struct RetryState {
    ExponentialBackoff backoff;
    std::chrono::steady_clock::time_point next_attempt;
  };

  /// Schedules (or reschedules, advancing the backoff) a background retry
  /// for `city`; lazily starts the retry thread. Call without retry_mu_ held.
  void ScheduleRetry(const std::string& city) ALT_EXCLUDES(retry_mu_);
  /// Drops `city`'s retry state after a successful reload.
  void ClearRetry(const std::string& city) ALT_EXCLUDES(retry_mu_);
  void RetryLoop() ALT_EXCLUDES(retry_mu_);

  Options options_;
  /// Guards only the map shape; each entry guards its own snapshot (Entry
  /// pointers are stable: entries_ never shrinks).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_ ALT_GUARDED_BY(mu_);

  Mutex retry_mu_;
  CondVar retry_cv_;
  bool retry_stop_ ALT_GUARDED_BY(retry_mu_) = false;
  bool retry_thread_started_ ALT_GUARDED_BY(retry_mu_) = false;
  std::map<std::string, RetryState> retry_ ALT_GUARDED_BY(retry_mu_);
  /// Started under retry_mu_; joined in the destructor, which runs after
  /// every other thread that could touch the manager is gone (destructors
  /// are outside the analysis, like constructors).
  std::thread retry_thread_ ALT_GUARDED_BY(retry_mu_);
};

}  // namespace altroute
