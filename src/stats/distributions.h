// Special functions and distribution CDFs needed for significance testing:
// log-gamma, regularized incomplete beta, the F distribution (ANOVA
// p-values) and the standard normal.
#pragma once

namespace altroute {

/// ln(Gamma(x)) for x > 0 (Lanczos approximation, ~1e-13 relative error).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1], via the Lentz continued-fraction expansion.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of the F distribution with (d1, d2) degrees of freedom.
double FDistributionCdf(double f, double d1, double d2);

/// Upper tail P(F >= f): the ANOVA p-value.
double FDistributionSf(double f, double d1, double d2);

/// Standard normal CDF.
double NormalCdf(double z);

}  // namespace altroute
