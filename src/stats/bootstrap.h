// Bootstrap resampling: nonparametric confidence intervals for the rating
// statistics. The paper reports only means/SDs and one ANOVA; bootstrap CIs
// on the pairwise mean differences make the "not significant" conclusion
// inspectable (every approach-pair CI straddles zero).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/random.h"
#include "util/result.h"

namespace altroute {

/// A two-sided percentile confidence interval.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  // the statistic on the original sample

  bool Contains(double value) const { return value >= lower && value <= upper; }
};

/// Percentile-bootstrap CI for `statistic` of one sample.
/// `confidence` in (0, 1), e.g. 0.95. Deterministic in *rng.
Result<ConfidenceInterval> BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence, int num_resamples, Rng* rng);

/// Percentile-bootstrap CI for mean(a) - mean(b) with independent
/// resampling of both groups.
Result<ConfidenceInterval> BootstrapMeanDifferenceCi(
    std::span<const double> a, std::span<const double> b, double confidence,
    int num_resamples, Rng* rng);

}  // namespace altroute
