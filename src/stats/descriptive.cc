#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace altroute {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
}

double Mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.Add(x);
  return s.mean();
}

double SampleStdDev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.Add(x);
  return s.stddev();
}

double Min(std::span<const double> xs) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double Max(std::span<const double> xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return (xs[mid - 1] + xs[mid]) / 2.0;
}

}  // namespace altroute
