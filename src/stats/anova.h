// One-way ANOVA (paper Sec. 4.1): tests the null hypothesis that the four
// approaches receive equal mean ratings. The paper reports p = 0.16 (all
// respondents), 0.68 (residents), 0.18 (non-residents).
#pragma once

#include <span>
#include <vector>

#include "util/result.h"

namespace altroute {

/// Result of a one-way ANOVA.
struct AnovaResult {
  double f_statistic = 0.0;
  double df_between = 0.0;  // k - 1
  double df_within = 0.0;   // N - k
  double ss_between = 0.0;
  double ss_within = 0.0;
  double p_value = 1.0;

  bool SignificantAt(double alpha) const { return p_value < alpha; }
};

/// Runs a one-way ANOVA over `groups` (one sample vector per treatment).
/// Requires at least two groups and N - k > 0 total residual degrees of
/// freedom; returns InvalidArgument otherwise.
Result<AnovaResult> OneWayAnova(std::span<const std::vector<double>> groups);

}  // namespace altroute
