#include "stats/anova.h"

#include <limits>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace altroute {

Result<AnovaResult> OneWayAnova(std::span<const std::vector<double>> groups) {
  const size_t k = groups.size();
  if (k < 2) return Status::InvalidArgument("ANOVA needs at least two groups");

  size_t total_n = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) return Status::InvalidArgument("ANOVA group is empty");
    total_n += g.size();
    for (double x : g) grand_sum += x;
  }
  if (total_n <= k) {
    return Status::InvalidArgument("ANOVA needs N > k observations");
  }
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  AnovaResult out;
  for (const auto& g : groups) {
    const double m = Mean(g);
    out.ss_between += static_cast<double>(g.size()) * (m - grand_mean) * (m - grand_mean);
    for (double x : g) out.ss_within += (x - m) * (x - m);
  }
  out.df_between = static_cast<double>(k - 1);
  out.df_within = static_cast<double>(total_n - k);

  const double ms_between = out.ss_between / out.df_between;
  const double ms_within = out.ss_within / out.df_within;
  if (ms_within <= 0.0) {
    // All groups internally constant: F is infinite unless the means agree.
    out.f_statistic = out.ss_between > 0.0
                          ? std::numeric_limits<double>::infinity()
                          : 0.0;
    out.p_value = out.ss_between > 0.0 ? 0.0 : 1.0;
    return out;
  }
  out.f_statistic = ms_between / ms_within;
  out.p_value = FDistributionSf(out.f_statistic, out.df_between, out.df_within);
  return out;
}

}  // namespace altroute
