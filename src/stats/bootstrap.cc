#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace altroute {

namespace {

/// The (lo, hi) percentile bounds of a sorted resample distribution.
ConfidenceInterval PercentileInterval(std::vector<double> values,
                                      double confidence, double point) {
  std::sort(values.begin(), values.end());
  const double alpha = (1.0 - confidence) / 2.0;
  auto at = [&](double q) {
    const double idx = q * (static_cast<double>(values.size()) - 1.0);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  ConfidenceInterval ci;
  ci.lower = at(alpha);
  ci.upper = at(1.0 - alpha);
  ci.point = point;
  return ci;
}

Status ValidateArgs(size_t sample_size, double confidence, int num_resamples,
                    Rng* rng) {
  if (sample_size == 0) return Status::InvalidArgument("empty sample");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  if (num_resamples < 10) {
    return Status::InvalidArgument("need at least 10 resamples");
  }
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  return Status::OK();
}

std::vector<double> Resample(std::span<const double> sample, Rng* rng) {
  std::vector<double> out(sample.size());
  for (double& x : out) {
    x = sample[rng->NextUint64(sample.size())];
  }
  return out;
}

}  // namespace

Result<ConfidenceInterval> BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence, int num_resamples, Rng* rng) {
  ALTROUTE_RETURN_NOT_OK(ValidateArgs(sample.size(), confidence,
                                      num_resamples, rng));
  std::vector<double> stats;
  stats.reserve(static_cast<size_t>(num_resamples));
  for (int i = 0; i < num_resamples; ++i) {
    stats.push_back(statistic(Resample(sample, rng)));
  }
  return PercentileInterval(std::move(stats), confidence, statistic(sample));
}

Result<ConfidenceInterval> BootstrapMeanDifferenceCi(
    std::span<const double> a, std::span<const double> b, double confidence,
    int num_resamples, Rng* rng) {
  ALTROUTE_RETURN_NOT_OK(ValidateArgs(a.size(), confidence, num_resamples,
                                      rng));
  if (b.empty()) return Status::InvalidArgument("empty sample");
  std::vector<double> diffs;
  diffs.reserve(static_cast<size_t>(num_resamples));
  for (int i = 0; i < num_resamples; ++i) {
    diffs.push_back(Mean(Resample(a, rng)) - Mean(Resample(b, rng)));
  }
  return PercentileInterval(std::move(diffs), confidence, Mean(a) - Mean(b));
}

}  // namespace altroute
