// Descriptive statistics used by the study tables: mean and standard
// deviation per approach/group, computed with numerically stable one-pass
// accumulation (Welford).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace altroute {

/// One-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Sample variance (n - 1 denominator); 0 when n < 2.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;

  /// Population variance (n denominator); 0 when n == 0.
  double population_variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Merges another accumulator (parallel Welford).
  void Merge(const RunningStats& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

double Mean(std::span<const double> xs);
/// Sample standard deviation (n - 1); 0 for fewer than 2 values.
double SampleStdDev(std::span<const double> xs);
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);
/// Median (average of middle two for even sizes); 0 for empty input.
double Median(std::vector<double> xs);

}  // namespace altroute
