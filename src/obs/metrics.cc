#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/logging.h"

namespace altroute {
namespace obs {

void Gauge::Add(double delta) {
  // fetch_add on atomic<double> is C++20 but not universally lowered well;
  // a CAS loop is portable and the gauge is not a hot-path instrument.
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  ALT_CHECK(start > 0.0) << "bucket start must be positive";
  ALT_CHECK(factor > 1.0) << "bucket factor must exceed 1";
  ALT_CHECK(count > 0) << "bucket count must be positive";
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  ALT_CHECK(!bounds_.empty()) << "histogram needs at least one bucket";
  ALT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "bucket bounds must be increasing";
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // lower_bound: the `le` bucket bound is inclusive (Prometheus semantics).
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      if (i == counts.size() - 1) return bounds_.back();  // +Inf bucket
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

namespace {

constexpr int kCounter = 0;
constexpr int kGauge = 1;
constexpr int kHistogram = 2;
constexpr int kCounterFamily = 3;
constexpr int kGaugeFamily = 4;
constexpr int kHistogramFamily = 5;

const char* TypeName(int kind) {
  switch (kind) {
    case kCounter:
    case kCounterFamily:
      return "counter";
    case kGauge:
    case kGaugeFamily:
      return "gauge";
    case kHistogram:
    case kHistogramFamily:
      return "histogram";
  }
  return "untyped";
}

/// Escapes a label value per the exposition format: backslash, quote, LF.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Renders `{k1="v1",k2="v2"}`; empty when there are no labels.
std::string LabelBlock(const std::vector<std::string>& keys,
                       const std::vector<std::string>& values,
                       const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  std::ostringstream os;
  bool any = false;
  for (size_t i = 0; i < keys.size() && i < values.size(); ++i) {
    os << (any ? "," : "{") << keys[i] << "=\"" << EscapeLabelValue(values[i])
       << "\"";
    any = true;
  }
  if (!extra_key.empty()) {
    os << (any ? "," : "{") << extra_key << "=\"" << extra_value << "\"";
    any = true;
  }
  if (any) os << "}";
  return os.str();
}

void RenderHistogram(std::ostringstream& os, const std::string& name,
                     const std::vector<std::string>& keys,
                     const std::vector<std::string>& values,
                     const Histogram& h) {
  const std::vector<uint64_t> counts = h.BucketCounts();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bounds().size(); ++i) {
    cumulative += counts[i];
    os << name << "_bucket"
       << LabelBlock(keys, values, "le", FormatValue(h.bounds()[i])) << " "
       << cumulative << "\n";
  }
  cumulative += counts.back();
  os << name << "_bucket" << LabelBlock(keys, values, "le", "+Inf") << " "
     << cumulative << "\n";
  os << name << "_sum" << LabelBlock(keys, values) << " "
     << FormatValue(h.Sum()) << "\n";
  os << name << "_count" << LabelBlock(keys, values) << " " << cumulative
     << "\n";
}

}  // namespace

struct MetricsRegistry::Entry {
  int kind = -1;
  std::string help;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::unique_ptr<CounterFamily> counter_family;
  std::unique_ptr<GaugeFamily> gauge_family;
  std::unique_ptr<HistogramFamily> histogram_family;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(const std::string& name,
                                                     const std::string& help,
                                                     int kind) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    ALT_CHECK(it->second->kind == kind)
        << "metric '" << name << "' re-registered as a different kind";
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->help = help;
  return *entries_.emplace(name, std::move(entry)).first->second;
}

const MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                                    int kind) const {
  ReaderMutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second->kind != kind) return nullptr;
  return it->second.get();
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  WriterMutexLock lock(&mu_);
  Entry& e = GetOrCreate(name, help, kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  WriterMutexLock lock(&mu_);
  Entry& e = GetOrCreate(name, help, kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  WriterMutexLock lock(&mu_);
  Entry& e = GetOrCreate(name, help, kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

CounterFamily& MetricsRegistry::GetCounterFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_keys) {
  WriterMutexLock lock(&mu_);
  Entry& e = GetOrCreate(name, help, kCounterFamily);
  if (!e.counter_family) {
    e.counter_family =
        std::make_unique<CounterFamily>(name, help, std::move(label_keys));
  }
  return *e.counter_family;
}

GaugeFamily& MetricsRegistry::GetGaugeFamily(const std::string& name,
                                             const std::string& help,
                                             std::vector<std::string> label_keys) {
  WriterMutexLock lock(&mu_);
  Entry& e = GetOrCreate(name, help, kGaugeFamily);
  if (!e.gauge_family) {
    e.gauge_family =
        std::make_unique<GaugeFamily>(name, help, std::move(label_keys));
  }
  return *e.gauge_family;
}

HistogramFamily& MetricsRegistry::GetHistogramFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_keys, std::vector<double> bounds) {
  WriterMutexLock lock(&mu_);
  Entry& e = GetOrCreate(name, help, kHistogramFamily);
  if (!e.histogram_family) {
    e.histogram_family = std::make_unique<HistogramFamily>(
        name, help, std::move(label_keys), std::move(bounds));
  }
  return *e.histogram_family;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const Entry* e = Find(name, kCounter);
  return e ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const Entry* e = Find(name, kGauge);
  return e ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const Entry* e = Find(name, kHistogram);
  return e ? e->histogram.get() : nullptr;
}

const CounterFamily* MetricsRegistry::FindCounterFamily(
    const std::string& name) const {
  const Entry* e = Find(name, kCounterFamily);
  return e ? e->counter_family.get() : nullptr;
}

std::string MetricsRegistry::ExposePrometheus() const {
  ReaderMutexLock lock(&mu_);
  std::ostringstream os;
  static const std::vector<std::string> kNoKeys;
  static const std::vector<std::string> kNoValues;
  // std::map iteration is already name-sorted.
  for (const auto& [name, entry] : entries_) {
    if (!entry->help.empty()) {
      os << "# HELP " << name << " " << entry->help << "\n";
    }
    os << "# TYPE " << name << " " << TypeName(entry->kind) << "\n";
    switch (entry->kind) {
      case kCounter:
        os << name << " " << entry->counter->Value() << "\n";
        break;
      case kGauge:
        os << name << " " << FormatValue(entry->gauge->Value()) << "\n";
        break;
      case kHistogram:
        RenderHistogram(os, name, kNoKeys, kNoValues, *entry->histogram);
        break;
      case kCounterFamily:
        for (const auto& [labels, child] : entry->counter_family->Children()) {
          os << name << LabelBlock(entry->counter_family->keys(), labels)
             << " " << child->Value() << "\n";
        }
        break;
      case kGaugeFamily:
        for (const auto& [labels, child] : entry->gauge_family->Children()) {
          os << name << LabelBlock(entry->gauge_family->keys(), labels) << " "
             << FormatValue(child->Value()) << "\n";
        }
        break;
      case kHistogramFamily:
        for (const auto& [labels, child] : entry->histogram_family->Children()) {
          RenderHistogram(os, name, entry->histogram_family->keys(), labels,
                          *child);
        }
        break;
    }
  }
  return os.str();
}

}  // namespace obs
}  // namespace altroute
