#include "obs/phase_timer.h"

#include <sstream>

namespace altroute {
namespace obs {

void RequestProfile::Record(std::string_view name, double seconds) {
  for (Phase& p : phases_) {
    if (p.name == name) {
      p.seconds += seconds;
      return;
    }
  }
  phases_.push_back(Phase{std::string(name), seconds});
}

void RequestProfile::RecordPreceding(std::string_view name, double seconds) {
  Record(name, seconds);
  preceding_s_ += seconds;
}

double RequestProfile::PhaseSum() const {
  double sum = 0.0;
  for (const Phase& p : phases_) sum += p.seconds;
  return sum;
}

double RequestProfile::TotalSeconds() const {
  return preceding_s_ +
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
             .count();
}

std::string RequestProfile::ToJson() const {
  // Hand-rolled rather than JsonWriter: obs must not depend on the server
  // library, and the phase names are code literals that never need escaping.
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"total_ms\":" << TotalSeconds() * 1e3 << ",\"phases\":[";
  bool first = true;
  for (const Phase& p : phases_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << p.name << "\",\"ms\":" << p.seconds * 1e3 << "}";
  }
  out << "]}";
  return out.str();
}

PhaseTimer::PhaseTimer(RequestProfile* profile, std::string_view name)
    : profile_(profile) {
  if (profile_ == nullptr) return;
  name_ = std::string(name);
  start_ = std::chrono::steady_clock::now();
}

void PhaseTimer::End() {
  if (profile_ == nullptr) return;
  profile_->Record(
      name_, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count());
  profile_ = nullptr;
}

}  // namespace obs
}  // namespace altroute
