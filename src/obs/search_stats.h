// Per-query search statistics, threaded through the routing kernels and the
// alternative-route generators as an optional out-parameter. Passing nullptr
// disables collection entirely: kernels accumulate into stack locals and
// flush once at the end, so the disabled path costs nothing measurable.
//
// The counters follow the measurement methodology of the alternative-route
// literature (settled-node counts, search-space overlap): they let every
// perf PR compare engines by work done, not only by wall time.
#pragma once

#include <cstdint>

namespace altroute {
namespace obs {

/// Work counters for one search (or one generator invocation). Plain
/// aggregatable integers; merging two stats objects is field-wise addition.
struct SearchStats {
  /// Nodes permanently settled (popped with final distance).
  uint64_t nodes_settled = 0;
  /// Edges examined in relaxation loops (including ones that did not
  /// improve a distance).
  uint64_t edges_relaxed = 0;
  /// Heap push-or-decrease operations.
  uint64_t heap_pushes = 0;
  /// Heap pop operations.
  uint64_t heap_pops = 0;
  /// Candidate paths a generator materialised (including rejected ones).
  uint64_t paths_generated = 0;
  /// Candidates dropped for exceeding the stretch bound.
  uint64_t paths_rejected_stretch = 0;
  /// Candidates dropped by a dissimilarity/duplicate test.
  uint64_t paths_rejected_similarity = 0;
  /// Candidates dropped by structural filters (loops, malformed joins,
  /// perceptual pruning).
  uint64_t paths_rejected_filter = 0;
  /// Outer iterations an iterative generator ran (Penalty).
  uint64_t iterations = 0;

  /// Field-wise accumulation.
  void MergeFrom(const SearchStats& other) {
    nodes_settled += other.nodes_settled;
    edges_relaxed += other.edges_relaxed;
    heap_pushes += other.heap_pushes;
    heap_pops += other.heap_pops;
    paths_generated += other.paths_generated;
    paths_rejected_stretch += other.paths_rejected_stretch;
    paths_rejected_similarity += other.paths_rejected_similarity;
    paths_rejected_filter += other.paths_rejected_filter;
    iterations += other.iterations;
  }

  uint64_t paths_rejected_total() const {
    return paths_rejected_stretch + paths_rejected_similarity +
           paths_rejected_filter;
  }

  bool IsZero() const {
    return nodes_settled == 0 && edges_relaxed == 0 && heap_pushes == 0 &&
           heap_pops == 0 && paths_generated == 0 &&
           paths_rejected_total() == 0 && iterations == 0;
  }
};

}  // namespace obs
}  // namespace altroute
