// Machine-readable benchmark results: the schema behind the committed
// BENCH_*.json baselines that track the serving stack's performance
// trajectory across PRs (ROADMAP: every optimisation PR must prove its
// before/after numbers).
//
// A BenchReport is one bench binary's output: a list of entries, each with
// wall-time percentiles (p50/p95/p99 over per-iteration samples) plus named
// work counters (settled nodes, requests/s, ...). Reports serialize to a
// stable JSON layout, parse back (for tools/bench_compare and tests), and
// diff against a baseline with a p99 regression threshold.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace altroute {
namespace obs {

/// The schema version written to and required from BENCH_*.json files.
/// Bump on any incompatible layout change; bench_compare hard-fails on a
/// mismatch so a stale baseline can never silently pass.
inline constexpr int kBenchSchemaVersion = 1;

/// Results of one named benchmark case (one kernel / generator / thread
/// count at one city size).
struct BenchEntry {
  std::string name;
  /// Number of timed iterations behind the percentiles.
  uint64_t samples = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  /// Named work counters (nodes_settled, requests_per_s, ...), averaged per
  /// iteration unless the key says otherwise.
  std::map<std::string, double> counters;
};

/// One bench binary's complete output.
struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  /// Which harness produced this ("perf_routing", "perf_engines",
  /// "perf_server") — compared reports must match.
  std::string bench;
  /// "smoke" (CI-sized) or "full"; informational, recorded in the JSON.
  std::string mode;
  std::vector<BenchEntry> entries;

  /// Pretty-printed JSON (stable key order, trailing newline) — the exact
  /// bytes committed as BENCH_<bench>.json.
  std::string ToJson() const;

  /// Parses ToJson() output. InvalidArgument on malformed JSON or a layout
  /// that is not a bench report; a wrong schema_version is FailedPrecondition
  /// so callers can distinguish "stale schema" from "garbage".
  static Result<BenchReport> FromJson(std::string_view json);

  Status WriteFile(const std::string& path) const;
  static Result<BenchReport> ReadFile(const std::string& path);

  /// Entry lookup by name; nullptr when absent.
  const BenchEntry* Find(std::string_view name) const;
};

/// Percentile (q in [0,1]) of `samples_ms` by nearest-rank on a sorted copy;
/// 0 when empty.
double PercentileMs(std::vector<double> samples_ms, double q);

struct CompareOptions {
  /// A new p99 above old_p99 * (1 + max_p99_regression_pct/100) is a
  /// regression.
  double max_p99_regression_pct = 10.0;
};

/// One detected regression (or coverage loss) between two reports.
struct BenchRegression {
  std::string entry;    // entry name
  std::string what;     // "p99" or "missing"
  double old_ms = 0.0;  // baseline p99 (0 for "missing")
  double new_ms = 0.0;  // candidate p99 (0 for "missing")
  double pct = 0.0;     // relative change in percent
  std::string ToString() const;
};

/// Diffs `candidate` against `baseline`. Schema/bench mismatches return
/// FailedPrecondition (hard error even in warn-only CI); otherwise the list
/// of regressions — entries whose p99 exceeds the threshold, and baseline
/// entries missing from the candidate (silent coverage loss must not read
/// as "no regression"). Entries new in the candidate are fine.
Result<std::vector<BenchRegression>> CompareBenchReports(
    const BenchReport& baseline, const BenchReport& candidate,
    const CompareOptions& options);

}  // namespace obs
}  // namespace altroute
