// Per-query tracing: a tree of timed spans, each optionally carrying the
// SearchStats its subtree produced and free-form string attributes.
//
// Usage (single-threaded — one Trace belongs to one query):
//   Trace trace;
//   {
//     TraceSpan query(&trace, "query");
//     {
//       TraceSpan gen(&trace, "generate:penalty");
//       engine.Generate(s, t, gen.stats());
//       gen.SetAttr("routes", "3");
//     }  // gen ends here
//   }
//   std::string json = trace.ToJson();
//
// A TraceSpan constructed with a null Trace* is a complete no-op (stats()
// returns nullptr, which disables collection down the call chain), so call
// sites create spans unconditionally and pay nothing when tracing is off.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/search_stats.h"

namespace altroute {
namespace obs {

class Trace;

/// RAII handle for one span. Nesting is inferred from construction order:
/// a span started while another is open becomes its child.
class TraceSpan {
 public:
  /// Starts a span named `name`; no-op when `trace` is null.
  TraceSpan(Trace* trace, std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Stats sink for this span, or nullptr when tracing is disabled —
  /// pass straight through as the kernels' out-parameter.
  SearchStats* stats();

  /// Attaches a string attribute (last write wins on duplicate keys).
  void SetAttr(const std::string& key, std::string value);

  /// Ends the span early (idempotent; the destructor calls it too).
  void End();

 private:
  Trace* trace_ = nullptr;
  size_t id_ = 0;
  bool ended_ = true;
};

/// Owns the span tree of one query. Not thread-safe (a query is processed
/// on one thread; create one Trace per query).
class Trace {
 public:
  Trace();

  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  /// Number of spans recorded so far.
  size_t size() const { return spans_.size(); }

  /// True while at least one span is open.
  bool HasOpenSpan() const { return !open_.empty(); }

  /// Renders the span forest as JSON: [{"name":..., "start_ms":...,
  /// "duration_ms":..., "attrs":{...}, "stats":{...}, "children":[...]}].
  /// Spans still open render with their current elapsed time.
  std::string ToJson() const;

  /// Total wall time of the first root span, in milliseconds (0 when empty).
  double RootDurationMs() const;

 private:
  friend class TraceSpan;

  struct Span {
    std::string name;
    size_t parent = kNoParent;
    double start_ms = 0.0;
    double duration_ms = 0.0;
    bool open = true;
    SearchStats stats;
    std::vector<std::pair<std::string, std::string>> attrs;
    std::vector<size_t> children;
  };

  size_t StartSpan(std::string name);
  void EndSpan(size_t id);
  double NowMs() const;
  void AppendSpanJson(size_t id, std::string* out) const;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;
  std::vector<size_t> roots_;
  std::vector<size_t> open_;  // stack of open span ids (parent inference)
};

}  // namespace obs
}  // namespace altroute
