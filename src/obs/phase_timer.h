// Per-request performance attribution: a RequestProfile decomposes one
// request's wall time into a small, bounded list of labeled phases (queue
// wait, snapshot acquire, snap-to-graph, one sub-phase per engine, result
// rendering, JSON serialization), so a latency regression names the layer
// that regressed instead of only "the request got slower".
//
// Usage mirrors TraceSpan (obs/trace.h):
//   RequestProfile profile;
//   {
//     PhaseTimer t(&profile, "snap");
//     ... snap ...
//   }  // records {"snap", elapsed}
//   profile.Record("queue_wait", waited_s);   // measured elsewhere
//
// A PhaseTimer constructed with a null profile is a complete no-op — no
// clock reads, no allocation — so call sites create timers unconditionally
// and the disabled path costs nothing (same bar as SearchStats, proven by
// BM_DijkstraPointToPointProfiled in bench_perf_routing).
//
// Re-recording an existing phase name accumulates into it, so a phase that
// runs once per engine ("render") reports one aggregate entry.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

namespace altroute {
namespace obs {

/// The labeled phase breakdown of one request. Not thread-safe (one request
/// is processed on one thread; create one profile per request).
class RequestProfile {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
  };

  RequestProfile() : epoch_(std::chrono::steady_clock::now()) {}

  /// Adds `seconds` to phase `name` (appending it on first use). Phase
  /// count stays bounded by the call sites: the taxonomy is fixed per
  /// release, never derived from request data.
  void Record(std::string_view name, double seconds);

  /// Records a phase that happened BEFORE this profile was constructed
  /// (queue wait, stamped by the HTTP layer): the time is also added to
  /// TotalSeconds() so the phase sum and the total stay comparable.
  void RecordPreceding(std::string_view name, double seconds);

  /// Phases in first-recorded order.
  const std::vector<Phase>& phases() const { return phases_; }

  /// Sum of all recorded phase durations.
  double PhaseSum() const;

  /// Wall time since construction plus any RecordPreceding() time: the
  /// request total the phase breakdown is attributed against.
  double TotalSeconds() const;

  /// {"total_ms":..., "phases":[{"name":"snap","ms":...}, ...]} — embedded
  /// in ?trace=1 responses and slow-query records.
  std::string ToJson() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  double preceding_s_ = 0.0;
  std::vector<Phase> phases_;
};

/// RAII phase stopwatch; records into the profile on destruction or End().
/// Null profile: complete no-op (the name is not even copied).
class PhaseTimer {
 public:
  PhaseTimer(RequestProfile* profile, std::string_view name);
  ~PhaseTimer() { End(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Ends the phase early (idempotent; the destructor calls it too).
  void End();

 private:
  RequestProfile* profile_ = nullptr;
  std::string name_;  // copied: call sites may pass temporaries
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace altroute
