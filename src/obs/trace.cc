#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace altroute {
namespace obs {

TraceSpan::TraceSpan(Trace* trace, std::string name) : trace_(trace) {
  if (trace_ == nullptr) return;
  id_ = trace_->StartSpan(std::move(name));
  ended_ = false;
}

TraceSpan::~TraceSpan() { End(); }

SearchStats* TraceSpan::stats() {
  if (trace_ == nullptr || ended_) return nullptr;
  return &trace_->spans_[id_].stats;
}

void TraceSpan::SetAttr(const std::string& key, std::string value) {
  if (trace_ == nullptr || ended_) return;
  auto& attrs = trace_->spans_[id_].attrs;
  for (auto& [k, v] : attrs) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs.emplace_back(key, std::move(value));
}

void TraceSpan::End() {
  if (trace_ == nullptr || ended_) return;
  trace_->EndSpan(id_);
  ended_ = true;
}

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

double Trace::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

size_t Trace::StartSpan(std::string name) {
  Span span;
  span.name = std::move(name);
  span.start_ms = NowMs();
  span.parent = open_.empty() ? kNoParent : open_.back();
  const size_t id = spans_.size();
  if (span.parent == kNoParent) {
    roots_.push_back(id);
  } else {
    spans_[span.parent].children.push_back(id);
  }
  spans_.push_back(std::move(span));
  open_.push_back(id);
  return id;
}

void Trace::EndSpan(size_t id) {
  Span& span = spans_[id];
  span.duration_ms = NowMs() - span.start_ms;
  span.open = false;
  // Spans are RAII-scoped, so the one being ended is normally on top; a
  // mis-nested early End() just removes it from wherever it sits.
  auto it = std::find(open_.rbegin(), open_.rend(), id);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

double Trace::RootDurationMs() const {
  if (roots_.empty()) return 0.0;
  const Span& root = spans_[roots_.front()];
  return root.open ? NowMs() - root.start_ms : root.duration_ms;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double v, std::string* out) {
  std::ostringstream os;
  os << v;
  *out += os.str();
}

void AppendStats(const SearchStats& s, std::string* out) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"nodes_settled\":%llu,\"edges_relaxed\":%llu,"
                "\"heap_pushes\":%llu,\"heap_pops\":%llu,"
                "\"paths_generated\":%llu,\"paths_rejected_stretch\":%llu,"
                "\"paths_rejected_similarity\":%llu,"
                "\"paths_rejected_filter\":%llu,\"iterations\":%llu}",
                static_cast<unsigned long long>(s.nodes_settled),
                static_cast<unsigned long long>(s.edges_relaxed),
                static_cast<unsigned long long>(s.heap_pushes),
                static_cast<unsigned long long>(s.heap_pops),
                static_cast<unsigned long long>(s.paths_generated),
                static_cast<unsigned long long>(s.paths_rejected_stretch),
                static_cast<unsigned long long>(s.paths_rejected_similarity),
                static_cast<unsigned long long>(s.paths_rejected_filter),
                static_cast<unsigned long long>(s.iterations));
  *out += buf;
}

}  // namespace

void Trace::AppendSpanJson(size_t id, std::string* out) const {
  const Span& span = spans_[id];
  *out += "{\"name\":";
  AppendEscaped(span.name, out);
  *out += ",\"start_ms\":";
  AppendNumber(span.start_ms, out);
  *out += ",\"duration_ms\":";
  AppendNumber(span.open ? NowMs() - span.start_ms : span.duration_ms, out);
  if (!span.attrs.empty()) {
    *out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [k, v] : span.attrs) {
      if (!first) *out += ",";
      first = false;
      AppendEscaped(k, out);
      *out += ":";
      AppendEscaped(v, out);
    }
    *out += "}";
  }
  if (!span.stats.IsZero()) {
    *out += ",\"stats\":";
    AppendStats(span.stats, out);
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) *out += ",";
      AppendSpanJson(span.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

std::string Trace::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) out += ",";
    AppendSpanJson(roots_[i], &out);
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace altroute
