#include "obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/json_parse.h"

namespace altroute {
namespace obs {

namespace {

/// Numbers in the committed baselines: fixed-point, enough digits that a
/// sub-microsecond kernel still round-trips meaningfully, no locale issues.
std::string FormatMs(double ms) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << ms;
  return out.str();
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << schema_version << ",\n";
  out << "  \"bench\": \"" << bench << "\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"entries\": [";
  bool first_entry = true;
  for (const BenchEntry& e : entries) {
    out << (first_entry ? "\n" : ",\n");
    first_entry = false;
    out << "    {\n";
    out << "      \"name\": \"" << e.name << "\",\n";
    out << "      \"samples\": " << e.samples << ",\n";
    out << "      \"p50_ms\": " << FormatMs(e.p50_ms) << ",\n";
    out << "      \"p95_ms\": " << FormatMs(e.p95_ms) << ",\n";
    out << "      \"p99_ms\": " << FormatMs(e.p99_ms) << ",\n";
    out << "      \"mean_ms\": " << FormatMs(e.mean_ms) << ",\n";
    out << "      \"counters\": {";
    bool first_counter = true;
    for (const auto& [key, value] : e.counters) {
      out << (first_counter ? "" : ", ");
      first_counter = false;
      out << "\"" << key << "\": " << FormatMs(value);
    }
    out << "}\n";
    out << "    }";
  }
  out << (entries.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

Result<BenchReport> BenchReport::FromJson(std::string_view json) {
  ALTROUTE_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("bench report must be a JSON object");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument("bench report lacks schema_version");
  }
  BenchReport report;
  report.schema_version = static_cast<int>(version->AsNumber());
  if (report.schema_version != kBenchSchemaVersion) {
    return Status::FailedPrecondition(
        "bench report schema_version " +
        std::to_string(report.schema_version) + " != supported " +
        std::to_string(kBenchSchemaVersion));
  }
  report.bench = root.GetString("bench", "");
  report.mode = root.GetString("mode", "");
  if (report.bench.empty()) {
    return Status::InvalidArgument("bench report lacks a bench name");
  }
  const JsonValue* entries = root.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument("bench report lacks an entries array");
  }
  for (const JsonValue& item : entries->AsArray()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("bench entry must be an object");
    }
    BenchEntry e;
    e.name = item.GetString("name", "");
    if (e.name.empty()) {
      return Status::InvalidArgument("bench entry lacks a name");
    }
    e.samples = static_cast<uint64_t>(item.GetNumber("samples", 0.0));
    e.p50_ms = item.GetNumber("p50_ms", 0.0);
    e.p95_ms = item.GetNumber("p95_ms", 0.0);
    e.p99_ms = item.GetNumber("p99_ms", 0.0);
    e.mean_ms = item.GetNumber("mean_ms", 0.0);
    if (const JsonValue* counters = item.Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->AsObject()) {
        if (value.is_number()) e.counters[key] = value.AsNumber();
      }
    }
    report.entries.push_back(std::move(e));
  }
  return report;
}

Status BenchReport::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open bench report for writing: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out.good()) {
    return Status::IOError("failed to write bench report: " + path);
  }
  return Status::OK();
}

Result<BenchReport> BenchReport::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open bench report: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto report = FromJson(buf.str());
  if (!report.ok()) {
    return Status(report.status().code(),
                  path + ": " + report.status().message());
  }
  return report;
}

const BenchEntry* BenchReport::Find(std::string_view name) const {
  for (const BenchEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double PercentileMs(std::vector<double> samples_ms, double q) {
  if (samples_ms.empty()) return 0.0;
  std::sort(samples_ms.begin(), samples_ms.end());
  if (q <= 0.0) return samples_ms.front();
  if (q >= 1.0) return samples_ms.back();
  // Nearest-rank: the smallest sample with at least q of the mass at or
  // below it — robust for the small sample counts smoke mode produces.
  const double rank = q * static_cast<double>(samples_ms.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= samples_ms.size()) index = samples_ms.size() - 1;
  return samples_ms[index];
}

std::string BenchRegression::ToString() const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  if (what == "missing") {
    out << entry << ": present in baseline (p99 " << old_ms
        << " ms) but missing from candidate";
  } else {
    out << entry << ": p99 " << old_ms << " ms -> " << new_ms << " ms (";
    if (pct >= 0.0) out << "+";
    out << pct << "%)";
  }
  return out.str();
}

Result<std::vector<BenchRegression>> CompareBenchReports(
    const BenchReport& baseline, const BenchReport& candidate,
    const CompareOptions& options) {
  if (baseline.bench != candidate.bench) {
    return Status::FailedPrecondition("bench name mismatch: baseline '" +
                                      baseline.bench + "' vs candidate '" +
                                      candidate.bench + "'");
  }
  std::vector<BenchRegression> regressions;
  for (const BenchEntry& old_entry : baseline.entries) {
    const BenchEntry* new_entry = candidate.Find(old_entry.name);
    if (new_entry == nullptr) {
      regressions.push_back(
          BenchRegression{old_entry.name, "missing", old_entry.p99_ms, 0.0,
                          0.0});
      continue;
    }
    const double allowed =
        old_entry.p99_ms * (1.0 + options.max_p99_regression_pct / 100.0);
    if (old_entry.p99_ms > 0.0 && new_entry->p99_ms > allowed) {
      const double pct =
          (new_entry->p99_ms / old_entry.p99_ms - 1.0) * 100.0;
      regressions.push_back(BenchRegression{old_entry.name, "p99",
                                            old_entry.p99_ms,
                                            new_entry->p99_ms, pct});
    }
  }
  return regressions;
}

}  // namespace obs
}  // namespace altroute
