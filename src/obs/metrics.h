// Process-wide metrics: lock-cheap Counter/Gauge/Histogram instruments,
// labeled families (metric{approach="penalty",city="Melbourne"}), and a
// registry that renders the Prometheus text exposition format.
//
// Design rules:
//  * Instrument updates are wait-free atomic adds (relaxed ordering) — safe
//    to call from any thread, cheap enough for per-relaxation call sites.
//  * Instruments are never unregistered; references returned by the
//    registry/families stay valid for the process lifetime.
//  * Registration (name -> instrument) takes a mutex; do it once at startup
//    and cache the reference, not per observation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace altroute {
namespace obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous value that can go up and down.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// RAII in-flight tracker: adds +1 to a gauge on construction and -1 on
/// destruction. Scope one over each unit of concurrent work (request,
/// checked-out context) to expose an instantaneous "how many right now".
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge& gauge) : gauge_(gauge) { gauge_.Add(1.0); }
  ~GaugeGuard() { gauge_.Add(-1.0); }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  Gauge& gauge_;
};

/// Returns `count` bucket upper bounds growing geometrically from `start`
/// by `factor` (the "log-bucketed" layout: constant relative error).
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// Histogram with fixed upper-bound buckets plus an implicit +Inf bucket.
/// Observations and reads are lock-free; reads under concurrent writes are
/// approximate (fine for monitoring).
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, last is +Inf overflow);
  /// non-cumulative.
  std::vector<uint64_t> BucketCounts() const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// containing bucket; assumes non-negative observations. Returns 0 when
  /// empty. Values in the overflow bucket report the largest finite bound.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A family of instruments sharing a name and label keys, one instrument per
/// distinct label-value tuple. `WithLabels` is mutex-guarded; cache the
/// returned reference on hot paths.
template <typename T>
class Family {
 public:
  Family(std::string name, std::string help, std::vector<std::string> keys)
      : name_(std::move(name)), help_(std::move(help)), keys_(std::move(keys)) {}

  /// Instrument for one label-value tuple (sizes must match the key list).
  /// Creates it on first use. For Histogram families the bucket layout is
  /// supplied via the factory overload below.
  T& WithLabels(const std::vector<std::string>& values) {
    return WithLabels(values, [] { return std::make_unique<T>(); });
  }

  template <typename Factory>
  T& WithLabels(const std::vector<std::string>& values, Factory make) {
    MutexLock lock(&mu_);
    auto it = children_.find(values);
    if (it == children_.end()) {
      it = children_.emplace(values, make()).first;
    }
    return *it->second;
  }

  /// Number of distinct label tuples materialised so far.
  size_t Cardinality() const {
    MutexLock lock(&mu_);
    return children_.size();
  }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<std::string>& keys() const { return keys_; }

  /// Snapshot of (label values, instrument) pairs in deterministic order.
  std::vector<std::pair<std::vector<std::string>, const T*>> Children() const {
    MutexLock lock(&mu_);
    std::vector<std::pair<std::vector<std::string>, const T*>> out;
    out.reserve(children_.size());
    for (const auto& [labels, child] : children_) {
      out.emplace_back(labels, child.get());
    }
    return out;
  }

 private:
  std::string name_;
  std::string help_;
  std::vector<std::string> keys_;
  mutable Mutex mu_;
  std::map<std::vector<std::string>, std::unique_ptr<T>> children_
      ALT_GUARDED_BY(mu_);
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;

/// Histogram family: all children share one bucket layout, fixed at family
/// construction.
class HistogramFamily : public Family<Histogram> {
 public:
  HistogramFamily(std::string name, std::string help,
                  std::vector<std::string> keys, std::vector<double> bounds)
      : Family<Histogram>(std::move(name), std::move(help), std::move(keys)),
        bounds_(std::move(bounds)) {}

  Histogram& WithLabels(const std::vector<std::string>& values) {
    return Family<Histogram>::WithLabels(
        values, [this] { return std::make_unique<Histogram>(bounds_); });
  }

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
};

/// Name -> instrument registry. One process-wide instance (`Global()`);
/// tests may construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  // out-of-line: Entry is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Get-or-create. Re-registering an existing name returns the existing
  /// instrument; a name registered as a different kind is a programmer
  /// error and CHECK-fails.
  Counter& GetCounter(const std::string& name, const std::string& help);
  Gauge& GetGauge(const std::string& name, const std::string& help);
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  CounterFamily& GetCounterFamily(const std::string& name,
                                  const std::string& help,
                                  std::vector<std::string> label_keys);
  GaugeFamily& GetGaugeFamily(const std::string& name, const std::string& help,
                              std::vector<std::string> label_keys);
  /// All children share one bucket layout, fixed at family registration.
  HistogramFamily& GetHistogramFamily(const std::string& name,
                                      const std::string& help,
                                      std::vector<std::string> label_keys,
                                      std::vector<double> bounds);

  /// Lookup without creation; nullptr when absent or of another kind.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const CounterFamily* FindCounterFamily(const std::string& name) const;

  /// Renders every registered instrument in the Prometheus text exposition
  /// format (version 0.0.4), sorted by metric name.
  std::string ExposePrometheus() const;

 private:
  struct Entry;
  Entry& GetOrCreate(const std::string& name, const std::string& help,
                     int kind) ALT_REQUIRES(mu_);
  const Entry* Find(const std::string& name, int kind) const;

  /// Reader/writer split: registration (startup) takes the writer side;
  /// Find* lookups and /metrics scrapes share the reader side, so a scrape
  /// never serialises against concurrent lookups. Entry pointees are stable
  /// (instruments are never unregistered), so only the map shape is guarded.
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_ ALT_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace altroute
