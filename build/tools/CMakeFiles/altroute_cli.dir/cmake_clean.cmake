file(REMOVE_RECURSE
  "CMakeFiles/altroute_cli.dir/altroute_cli.cc.o"
  "CMakeFiles/altroute_cli.dir/altroute_cli.cc.o.d"
  "altroute_cli"
  "altroute_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
