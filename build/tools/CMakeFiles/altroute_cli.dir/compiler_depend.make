# Empty compiler generated dependencies file for altroute_cli.
# This may be replaced when dependencies are built.
