# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/altroute_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_route_smoke "/root/repo/build/tools/altroute_cli" "route" "--city" "melbourne" "--scale" "0.25" "--from" "1" "--to" "50")
set_tests_properties(cli_route_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_route_geojson_smoke "/root/repo/build/tools/altroute_cli" "route" "--city" "copenhagen" "--scale" "0.25" "--from" "3" "--to" "40" "--engine" "plateau" "--geojson")
set_tests_properties(cli_route_geojson_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_build_city_smoke "/root/repo/build/tools/altroute_cli" "build-city" "dhaka" "--scale" "0.2")
set_tests_properties(cli_build_city_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
