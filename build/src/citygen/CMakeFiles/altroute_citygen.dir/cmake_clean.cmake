file(REMOVE_RECURSE
  "CMakeFiles/altroute_citygen.dir/city_generator.cc.o"
  "CMakeFiles/altroute_citygen.dir/city_generator.cc.o.d"
  "CMakeFiles/altroute_citygen.dir/city_spec.cc.o"
  "CMakeFiles/altroute_citygen.dir/city_spec.cc.o.d"
  "libaltroute_citygen.a"
  "libaltroute_citygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_citygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
