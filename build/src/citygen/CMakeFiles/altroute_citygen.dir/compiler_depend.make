# Empty compiler generated dependencies file for altroute_citygen.
# This may be replaced when dependencies are built.
