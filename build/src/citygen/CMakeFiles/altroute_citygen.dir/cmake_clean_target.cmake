file(REMOVE_RECURSE
  "libaltroute_citygen.a"
)
