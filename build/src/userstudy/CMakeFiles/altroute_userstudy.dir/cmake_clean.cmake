file(REMOVE_RECURSE
  "CMakeFiles/altroute_userstudy.dir/comments.cc.o"
  "CMakeFiles/altroute_userstudy.dir/comments.cc.o.d"
  "CMakeFiles/altroute_userstudy.dir/export.cc.o"
  "CMakeFiles/altroute_userstudy.dir/export.cc.o.d"
  "CMakeFiles/altroute_userstudy.dir/participant.cc.o"
  "CMakeFiles/altroute_userstudy.dir/participant.cc.o.d"
  "CMakeFiles/altroute_userstudy.dir/rating_model.cc.o"
  "CMakeFiles/altroute_userstudy.dir/rating_model.cc.o.d"
  "CMakeFiles/altroute_userstudy.dir/report.cc.o"
  "CMakeFiles/altroute_userstudy.dir/report.cc.o.d"
  "CMakeFiles/altroute_userstudy.dir/study_runner.cc.o"
  "CMakeFiles/altroute_userstudy.dir/study_runner.cc.o.d"
  "CMakeFiles/altroute_userstudy.dir/tables.cc.o"
  "CMakeFiles/altroute_userstudy.dir/tables.cc.o.d"
  "libaltroute_userstudy.a"
  "libaltroute_userstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_userstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
