file(REMOVE_RECURSE
  "libaltroute_userstudy.a"
)
