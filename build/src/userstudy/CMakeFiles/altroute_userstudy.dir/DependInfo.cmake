
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/userstudy/comments.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/comments.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/comments.cc.o.d"
  "/root/repo/src/userstudy/export.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/export.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/export.cc.o.d"
  "/root/repo/src/userstudy/participant.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/participant.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/participant.cc.o.d"
  "/root/repo/src/userstudy/rating_model.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/rating_model.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/rating_model.cc.o.d"
  "/root/repo/src/userstudy/report.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/report.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/report.cc.o.d"
  "/root/repo/src/userstudy/study_runner.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/study_runner.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/study_runner.cc.o.d"
  "/root/repo/src/userstudy/tables.cc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/tables.cc.o" "gcc" "src/userstudy/CMakeFiles/altroute_userstudy.dir/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/altroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
