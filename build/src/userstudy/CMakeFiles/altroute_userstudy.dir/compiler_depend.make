# Empty compiler generated dependencies file for altroute_userstudy.
# This may be replaced when dependencies are built.
