file(REMOVE_RECURSE
  "CMakeFiles/altroute_graph.dir/components.cc.o"
  "CMakeFiles/altroute_graph.dir/components.cc.o.d"
  "CMakeFiles/altroute_graph.dir/graph_builder.cc.o"
  "CMakeFiles/altroute_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/altroute_graph.dir/road_class.cc.o"
  "CMakeFiles/altroute_graph.dir/road_class.cc.o.d"
  "CMakeFiles/altroute_graph.dir/road_network.cc.o"
  "CMakeFiles/altroute_graph.dir/road_network.cc.o.d"
  "CMakeFiles/altroute_graph.dir/serialization.cc.o"
  "CMakeFiles/altroute_graph.dir/serialization.cc.o.d"
  "CMakeFiles/altroute_graph.dir/statistics.cc.o"
  "CMakeFiles/altroute_graph.dir/statistics.cc.o.d"
  "libaltroute_graph.a"
  "libaltroute_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
