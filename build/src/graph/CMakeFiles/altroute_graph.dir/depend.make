# Empty dependencies file for altroute_graph.
# This may be replaced when dependencies are built.
