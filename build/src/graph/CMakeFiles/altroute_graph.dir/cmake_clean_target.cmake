file(REMOVE_RECURSE
  "libaltroute_graph.a"
)
