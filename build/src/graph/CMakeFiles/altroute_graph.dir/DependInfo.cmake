
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/altroute_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/altroute_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/altroute_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/altroute_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/road_class.cc" "src/graph/CMakeFiles/altroute_graph.dir/road_class.cc.o" "gcc" "src/graph/CMakeFiles/altroute_graph.dir/road_class.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/graph/CMakeFiles/altroute_graph.dir/road_network.cc.o" "gcc" "src/graph/CMakeFiles/altroute_graph.dir/road_network.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/graph/CMakeFiles/altroute_graph.dir/serialization.cc.o" "gcc" "src/graph/CMakeFiles/altroute_graph.dir/serialization.cc.o.d"
  "/root/repo/src/graph/statistics.cc" "src/graph/CMakeFiles/altroute_graph.dir/statistics.cc.o" "gcc" "src/graph/CMakeFiles/altroute_graph.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
