
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alternative_graph.cc" "src/core/CMakeFiles/altroute_core.dir/alternative_graph.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/alternative_graph.cc.o.d"
  "/root/repo/src/core/commercial.cc" "src/core/CMakeFiles/altroute_core.dir/commercial.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/commercial.cc.o.d"
  "/root/repo/src/core/dissimilarity.cc" "src/core/CMakeFiles/altroute_core.dir/dissimilarity.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/dissimilarity.cc.o.d"
  "/root/repo/src/core/engine_registry.cc" "src/core/CMakeFiles/altroute_core.dir/engine_registry.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/engine_registry.cc.o.d"
  "/root/repo/src/core/filters.cc" "src/core/CMakeFiles/altroute_core.dir/filters.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/filters.cc.o.d"
  "/root/repo/src/core/path.cc" "src/core/CMakeFiles/altroute_core.dir/path.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/path.cc.o.d"
  "/root/repo/src/core/penalty.cc" "src/core/CMakeFiles/altroute_core.dir/penalty.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/penalty.cc.o.d"
  "/root/repo/src/core/plateau.cc" "src/core/CMakeFiles/altroute_core.dir/plateau.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/plateau.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/core/CMakeFiles/altroute_core.dir/quality.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/quality.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/altroute_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/skyline.cc" "src/core/CMakeFiles/altroute_core.dir/skyline.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/skyline.cc.o.d"
  "/root/repo/src/core/turn_aware_alternatives.cc" "src/core/CMakeFiles/altroute_core.dir/turn_aware_alternatives.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/turn_aware_alternatives.cc.o.d"
  "/root/repo/src/core/yen_overlap.cc" "src/core/CMakeFiles/altroute_core.dir/yen_overlap.cc.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/yen_overlap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
