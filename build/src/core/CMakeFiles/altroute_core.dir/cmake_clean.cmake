file(REMOVE_RECURSE
  "CMakeFiles/altroute_core.dir/alternative_graph.cc.o"
  "CMakeFiles/altroute_core.dir/alternative_graph.cc.o.d"
  "CMakeFiles/altroute_core.dir/commercial.cc.o"
  "CMakeFiles/altroute_core.dir/commercial.cc.o.d"
  "CMakeFiles/altroute_core.dir/dissimilarity.cc.o"
  "CMakeFiles/altroute_core.dir/dissimilarity.cc.o.d"
  "CMakeFiles/altroute_core.dir/engine_registry.cc.o"
  "CMakeFiles/altroute_core.dir/engine_registry.cc.o.d"
  "CMakeFiles/altroute_core.dir/filters.cc.o"
  "CMakeFiles/altroute_core.dir/filters.cc.o.d"
  "CMakeFiles/altroute_core.dir/path.cc.o"
  "CMakeFiles/altroute_core.dir/path.cc.o.d"
  "CMakeFiles/altroute_core.dir/penalty.cc.o"
  "CMakeFiles/altroute_core.dir/penalty.cc.o.d"
  "CMakeFiles/altroute_core.dir/plateau.cc.o"
  "CMakeFiles/altroute_core.dir/plateau.cc.o.d"
  "CMakeFiles/altroute_core.dir/quality.cc.o"
  "CMakeFiles/altroute_core.dir/quality.cc.o.d"
  "CMakeFiles/altroute_core.dir/similarity.cc.o"
  "CMakeFiles/altroute_core.dir/similarity.cc.o.d"
  "CMakeFiles/altroute_core.dir/skyline.cc.o"
  "CMakeFiles/altroute_core.dir/skyline.cc.o.d"
  "CMakeFiles/altroute_core.dir/turn_aware_alternatives.cc.o"
  "CMakeFiles/altroute_core.dir/turn_aware_alternatives.cc.o.d"
  "CMakeFiles/altroute_core.dir/yen_overlap.cc.o"
  "CMakeFiles/altroute_core.dir/yen_overlap.cc.o.d"
  "libaltroute_core.a"
  "libaltroute_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
