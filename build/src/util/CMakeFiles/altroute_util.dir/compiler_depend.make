# Empty compiler generated dependencies file for altroute_util.
# This may be replaced when dependencies are built.
