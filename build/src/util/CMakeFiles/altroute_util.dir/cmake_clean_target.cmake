file(REMOVE_RECURSE
  "libaltroute_util.a"
)
