file(REMOVE_RECURSE
  "CMakeFiles/altroute_util.dir/logging.cc.o"
  "CMakeFiles/altroute_util.dir/logging.cc.o.d"
  "CMakeFiles/altroute_util.dir/random.cc.o"
  "CMakeFiles/altroute_util.dir/random.cc.o.d"
  "CMakeFiles/altroute_util.dir/status.cc.o"
  "CMakeFiles/altroute_util.dir/status.cc.o.d"
  "CMakeFiles/altroute_util.dir/string_util.cc.o"
  "CMakeFiles/altroute_util.dir/string_util.cc.o.d"
  "libaltroute_util.a"
  "libaltroute_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
