file(REMOVE_RECURSE
  "libaltroute_traffic.a"
)
