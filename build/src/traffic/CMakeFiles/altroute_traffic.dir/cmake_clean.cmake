file(REMOVE_RECURSE
  "CMakeFiles/altroute_traffic.dir/traffic_model.cc.o"
  "CMakeFiles/altroute_traffic.dir/traffic_model.cc.o.d"
  "libaltroute_traffic.a"
  "libaltroute_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
