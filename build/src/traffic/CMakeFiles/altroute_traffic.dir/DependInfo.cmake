
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/traffic_model.cc" "src/traffic/CMakeFiles/altroute_traffic.dir/traffic_model.cc.o" "gcc" "src/traffic/CMakeFiles/altroute_traffic.dir/traffic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
