# Empty dependencies file for altroute_traffic.
# This may be replaced when dependencies are built.
