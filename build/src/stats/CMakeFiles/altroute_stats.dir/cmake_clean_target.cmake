file(REMOVE_RECURSE
  "libaltroute_stats.a"
)
