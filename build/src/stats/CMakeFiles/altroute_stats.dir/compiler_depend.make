# Empty compiler generated dependencies file for altroute_stats.
# This may be replaced when dependencies are built.
