file(REMOVE_RECURSE
  "CMakeFiles/altroute_stats.dir/anova.cc.o"
  "CMakeFiles/altroute_stats.dir/anova.cc.o.d"
  "CMakeFiles/altroute_stats.dir/bootstrap.cc.o"
  "CMakeFiles/altroute_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/altroute_stats.dir/descriptive.cc.o"
  "CMakeFiles/altroute_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/altroute_stats.dir/distributions.cc.o"
  "CMakeFiles/altroute_stats.dir/distributions.cc.o.d"
  "libaltroute_stats.a"
  "libaltroute_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
