file(REMOVE_RECURSE
  "libaltroute_osm.a"
)
