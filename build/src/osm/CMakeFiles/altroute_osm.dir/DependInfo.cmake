
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osm/network_constructor.cc" "src/osm/CMakeFiles/altroute_osm.dir/network_constructor.cc.o" "gcc" "src/osm/CMakeFiles/altroute_osm.dir/network_constructor.cc.o.d"
  "/root/repo/src/osm/osm_parser.cc" "src/osm/CMakeFiles/altroute_osm.dir/osm_parser.cc.o" "gcc" "src/osm/CMakeFiles/altroute_osm.dir/osm_parser.cc.o.d"
  "/root/repo/src/osm/restrictions.cc" "src/osm/CMakeFiles/altroute_osm.dir/restrictions.cc.o" "gcc" "src/osm/CMakeFiles/altroute_osm.dir/restrictions.cc.o.d"
  "/root/repo/src/osm/speed_model.cc" "src/osm/CMakeFiles/altroute_osm.dir/speed_model.cc.o" "gcc" "src/osm/CMakeFiles/altroute_osm.dir/speed_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
