file(REMOVE_RECURSE
  "CMakeFiles/altroute_osm.dir/network_constructor.cc.o"
  "CMakeFiles/altroute_osm.dir/network_constructor.cc.o.d"
  "CMakeFiles/altroute_osm.dir/osm_parser.cc.o"
  "CMakeFiles/altroute_osm.dir/osm_parser.cc.o.d"
  "CMakeFiles/altroute_osm.dir/restrictions.cc.o"
  "CMakeFiles/altroute_osm.dir/restrictions.cc.o.d"
  "CMakeFiles/altroute_osm.dir/speed_model.cc.o"
  "CMakeFiles/altroute_osm.dir/speed_model.cc.o.d"
  "libaltroute_osm.a"
  "libaltroute_osm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
