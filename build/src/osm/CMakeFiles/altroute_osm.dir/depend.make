# Empty dependencies file for altroute_osm.
# This may be replaced when dependencies are built.
