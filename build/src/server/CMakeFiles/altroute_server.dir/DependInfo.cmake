
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/demo_service.cc" "src/server/CMakeFiles/altroute_server.dir/demo_service.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/demo_service.cc.o.d"
  "/root/repo/src/server/directions.cc" "src/server/CMakeFiles/altroute_server.dir/directions.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/directions.cc.o.d"
  "/root/repo/src/server/geojson.cc" "src/server/CMakeFiles/altroute_server.dir/geojson.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/geojson.cc.o.d"
  "/root/repo/src/server/http_server.cc" "src/server/CMakeFiles/altroute_server.dir/http_server.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/http_server.cc.o.d"
  "/root/repo/src/server/json.cc" "src/server/CMakeFiles/altroute_server.dir/json.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/json.cc.o.d"
  "/root/repo/src/server/query_processor.cc" "src/server/CMakeFiles/altroute_server.dir/query_processor.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/query_processor.cc.o.d"
  "/root/repo/src/server/rating_store.cc" "src/server/CMakeFiles/altroute_server.dir/rating_store.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/rating_store.cc.o.d"
  "/root/repo/src/server/url.cc" "src/server/CMakeFiles/altroute_server.dir/url.cc.o" "gcc" "src/server/CMakeFiles/altroute_server.dir/url.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
