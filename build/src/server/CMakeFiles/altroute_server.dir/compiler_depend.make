# Empty compiler generated dependencies file for altroute_server.
# This may be replaced when dependencies are built.
