file(REMOVE_RECURSE
  "CMakeFiles/altroute_server.dir/demo_service.cc.o"
  "CMakeFiles/altroute_server.dir/demo_service.cc.o.d"
  "CMakeFiles/altroute_server.dir/directions.cc.o"
  "CMakeFiles/altroute_server.dir/directions.cc.o.d"
  "CMakeFiles/altroute_server.dir/geojson.cc.o"
  "CMakeFiles/altroute_server.dir/geojson.cc.o.d"
  "CMakeFiles/altroute_server.dir/http_server.cc.o"
  "CMakeFiles/altroute_server.dir/http_server.cc.o.d"
  "CMakeFiles/altroute_server.dir/json.cc.o"
  "CMakeFiles/altroute_server.dir/json.cc.o.d"
  "CMakeFiles/altroute_server.dir/query_processor.cc.o"
  "CMakeFiles/altroute_server.dir/query_processor.cc.o.d"
  "CMakeFiles/altroute_server.dir/rating_store.cc.o"
  "CMakeFiles/altroute_server.dir/rating_store.cc.o.d"
  "CMakeFiles/altroute_server.dir/url.cc.o"
  "CMakeFiles/altroute_server.dir/url.cc.o.d"
  "libaltroute_server.a"
  "libaltroute_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
