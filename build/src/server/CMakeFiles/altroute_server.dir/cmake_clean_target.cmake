file(REMOVE_RECURSE
  "libaltroute_server.a"
)
