file(REMOVE_RECURSE
  "CMakeFiles/altroute_routing.dir/astar.cc.o"
  "CMakeFiles/altroute_routing.dir/astar.cc.o.d"
  "CMakeFiles/altroute_routing.dir/bidirectional_dijkstra.cc.o"
  "CMakeFiles/altroute_routing.dir/bidirectional_dijkstra.cc.o.d"
  "CMakeFiles/altroute_routing.dir/contraction_hierarchy.cc.o"
  "CMakeFiles/altroute_routing.dir/contraction_hierarchy.cc.o.d"
  "CMakeFiles/altroute_routing.dir/dijkstra.cc.o"
  "CMakeFiles/altroute_routing.dir/dijkstra.cc.o.d"
  "CMakeFiles/altroute_routing.dir/many_to_many.cc.o"
  "CMakeFiles/altroute_routing.dir/many_to_many.cc.o.d"
  "CMakeFiles/altroute_routing.dir/pareto.cc.o"
  "CMakeFiles/altroute_routing.dir/pareto.cc.o.d"
  "CMakeFiles/altroute_routing.dir/phast.cc.o"
  "CMakeFiles/altroute_routing.dir/phast.cc.o.d"
  "CMakeFiles/altroute_routing.dir/turn_aware.cc.o"
  "CMakeFiles/altroute_routing.dir/turn_aware.cc.o.d"
  "CMakeFiles/altroute_routing.dir/yen.cc.o"
  "CMakeFiles/altroute_routing.dir/yen.cc.o.d"
  "libaltroute_routing.a"
  "libaltroute_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
