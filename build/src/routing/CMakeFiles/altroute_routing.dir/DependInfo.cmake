
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/astar.cc" "src/routing/CMakeFiles/altroute_routing.dir/astar.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/astar.cc.o.d"
  "/root/repo/src/routing/bidirectional_dijkstra.cc" "src/routing/CMakeFiles/altroute_routing.dir/bidirectional_dijkstra.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/bidirectional_dijkstra.cc.o.d"
  "/root/repo/src/routing/contraction_hierarchy.cc" "src/routing/CMakeFiles/altroute_routing.dir/contraction_hierarchy.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/contraction_hierarchy.cc.o.d"
  "/root/repo/src/routing/dijkstra.cc" "src/routing/CMakeFiles/altroute_routing.dir/dijkstra.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/dijkstra.cc.o.d"
  "/root/repo/src/routing/many_to_many.cc" "src/routing/CMakeFiles/altroute_routing.dir/many_to_many.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/many_to_many.cc.o.d"
  "/root/repo/src/routing/pareto.cc" "src/routing/CMakeFiles/altroute_routing.dir/pareto.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/pareto.cc.o.d"
  "/root/repo/src/routing/phast.cc" "src/routing/CMakeFiles/altroute_routing.dir/phast.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/phast.cc.o.d"
  "/root/repo/src/routing/turn_aware.cc" "src/routing/CMakeFiles/altroute_routing.dir/turn_aware.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/turn_aware.cc.o.d"
  "/root/repo/src/routing/yen.cc" "src/routing/CMakeFiles/altroute_routing.dir/yen.cc.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/yen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
