file(REMOVE_RECURSE
  "libaltroute_geo.a"
)
