file(REMOVE_RECURSE
  "CMakeFiles/altroute_geo.dir/latlng.cc.o"
  "CMakeFiles/altroute_geo.dir/latlng.cc.o.d"
  "CMakeFiles/altroute_geo.dir/polyline.cc.o"
  "CMakeFiles/altroute_geo.dir/polyline.cc.o.d"
  "CMakeFiles/altroute_geo.dir/simplify.cc.o"
  "CMakeFiles/altroute_geo.dir/simplify.cc.o.d"
  "CMakeFiles/altroute_geo.dir/spatial_index.cc.o"
  "CMakeFiles/altroute_geo.dir/spatial_index.cc.o.d"
  "libaltroute_geo.a"
  "libaltroute_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
