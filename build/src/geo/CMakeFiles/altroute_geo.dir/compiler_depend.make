# Empty compiler generated dependencies file for altroute_geo.
# This may be replaced when dependencies are built.
