# Empty dependencies file for bench_rating_model_ablation.
# This may be replaced when dependencies are built.
