file(REMOVE_RECURSE
  "CMakeFiles/bench_turn_ablation.dir/bench_turn_ablation.cc.o"
  "CMakeFiles/bench_turn_ablation.dir/bench_turn_ablation.cc.o.d"
  "bench_turn_ablation"
  "bench_turn_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_turn_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
