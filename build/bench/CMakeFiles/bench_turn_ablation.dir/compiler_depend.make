# Empty compiler generated dependencies file for bench_turn_ablation.
# This may be replaced when dependencies are built.
