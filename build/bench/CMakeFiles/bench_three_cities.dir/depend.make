# Empty dependencies file for bench_three_cities.
# This may be replaced when dependencies are built.
