file(REMOVE_RECURSE
  "CMakeFiles/bench_three_cities.dir/bench_three_cities.cc.o"
  "CMakeFiles/bench_three_cities.dir/bench_three_cities.cc.o.d"
  "bench_three_cities"
  "bench_three_cities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_three_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
