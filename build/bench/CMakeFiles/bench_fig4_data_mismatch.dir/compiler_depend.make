# Empty compiler generated dependencies file for bench_fig4_data_mismatch.
# This may be replaced when dependencies are built.
