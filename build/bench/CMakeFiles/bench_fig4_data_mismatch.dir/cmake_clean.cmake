file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_data_mismatch.dir/bench_fig4_data_mismatch.cc.o"
  "CMakeFiles/bench_fig4_data_mismatch.dir/bench_fig4_data_mismatch.cc.o.d"
  "bench_fig4_data_mismatch"
  "bench_fig4_data_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_data_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
