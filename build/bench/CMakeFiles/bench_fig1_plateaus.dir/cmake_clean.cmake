file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_plateaus.dir/bench_fig1_plateaus.cc.o"
  "CMakeFiles/bench_fig1_plateaus.dir/bench_fig1_plateaus.cc.o.d"
  "bench_fig1_plateaus"
  "bench_fig1_plateaus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_plateaus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
