# Empty dependencies file for bench_fig1_plateaus.
# This may be replaced when dependencies are built.
