file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_all_responses.dir/bench_table1_all_responses.cc.o"
  "CMakeFiles/bench_table1_all_responses.dir/bench_table1_all_responses.cc.o.d"
  "bench_table1_all_responses"
  "bench_table1_all_responses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_all_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
