# Empty dependencies file for bench_table1_all_responses.
# This may be replaced when dependencies are built.
