# Empty compiler generated dependencies file for bench_filter_ablation.
# This may be replaced when dependencies are built.
