file(REMOVE_RECURSE
  "CMakeFiles/bench_filter_ablation.dir/bench_filter_ablation.cc.o"
  "CMakeFiles/bench_filter_ablation.dir/bench_filter_ablation.cc.o.d"
  "bench_filter_ablation"
  "bench_filter_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
