
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_filter_ablation.cc" "bench/CMakeFiles/bench_filter_ablation.dir/bench_filter_ablation.cc.o" "gcc" "bench/CMakeFiles/bench_filter_ablation.dir/bench_filter_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/userstudy/CMakeFiles/altroute_userstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/altroute_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/altroute_server.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/altroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/altroute_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
