file(REMOVE_RECURSE
  "CMakeFiles/bench_param_ablation.dir/bench_param_ablation.cc.o"
  "CMakeFiles/bench_param_ablation.dir/bench_param_ablation.cc.o.d"
  "bench_param_ablation"
  "bench_param_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
