# Empty dependencies file for bench_param_ablation.
# This may be replaced when dependencies are built.
