file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nonresidents.dir/bench_table3_nonresidents.cc.o"
  "CMakeFiles/bench_table3_nonresidents.dir/bench_table3_nonresidents.cc.o.d"
  "bench_table3_nonresidents"
  "bench_table3_nonresidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nonresidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
