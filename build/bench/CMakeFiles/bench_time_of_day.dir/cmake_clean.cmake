file(REMOVE_RECURSE
  "CMakeFiles/bench_time_of_day.dir/bench_time_of_day.cc.o"
  "CMakeFiles/bench_time_of_day.dir/bench_time_of_day.cc.o.d"
  "bench_time_of_day"
  "bench_time_of_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_of_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
