file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_routing.dir/bench_perf_routing.cc.o"
  "CMakeFiles/bench_perf_routing.dir/bench_perf_routing.cc.o.d"
  "bench_perf_routing"
  "bench_perf_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
