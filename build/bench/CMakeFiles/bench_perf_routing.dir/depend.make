# Empty dependencies file for bench_perf_routing.
# This may be replaced when dependencies are built.
