file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_residents.dir/bench_table2_residents.cc.o"
  "CMakeFiles/bench_table2_residents.dir/bench_table2_residents.cc.o.d"
  "bench_table2_residents"
  "bench_table2_residents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_residents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
