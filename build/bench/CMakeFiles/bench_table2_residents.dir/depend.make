# Empty dependencies file for bench_table2_residents.
# This may be replaced when dependencies are built.
