file(REMOVE_RECURSE
  "CMakeFiles/bench_anova_significance.dir/bench_anova_significance.cc.o"
  "CMakeFiles/bench_anova_significance.dir/bench_anova_significance.cc.o.d"
  "bench_anova_significance"
  "bench_anova_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anova_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
