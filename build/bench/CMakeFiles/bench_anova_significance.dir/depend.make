# Empty dependencies file for bench_anova_significance.
# This may be replaced when dependencies are built.
