file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_generators.dir/bench_extension_generators.cc.o"
  "CMakeFiles/bench_extension_generators.dir/bench_extension_generators.cc.o.d"
  "bench_extension_generators"
  "bench_extension_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
