# Empty dependencies file for bench_extension_generators.
# This may be replaced when dependencies are built.
