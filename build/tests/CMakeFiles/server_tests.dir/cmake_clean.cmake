file(REMOVE_RECURSE
  "CMakeFiles/server_tests.dir/server/directions_test.cc.o"
  "CMakeFiles/server_tests.dir/server/directions_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/geojson_test.cc.o"
  "CMakeFiles/server_tests.dir/server/geojson_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/http_edge_test.cc.o"
  "CMakeFiles/server_tests.dir/server/http_edge_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/http_server_test.cc.o"
  "CMakeFiles/server_tests.dir/server/http_server_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/json_test.cc.o"
  "CMakeFiles/server_tests.dir/server/json_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/query_processor_test.cc.o"
  "CMakeFiles/server_tests.dir/server/query_processor_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/rating_store_test.cc.o"
  "CMakeFiles/server_tests.dir/server/rating_store_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server/url_test.cc.o"
  "CMakeFiles/server_tests.dir/server/url_test.cc.o.d"
  "server_tests"
  "server_tests.pdb"
  "server_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
