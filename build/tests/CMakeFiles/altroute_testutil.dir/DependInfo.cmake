
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/testutil.cc" "tests/CMakeFiles/altroute_testutil.dir/testutil.cc.o" "gcc" "tests/CMakeFiles/altroute_testutil.dir/testutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
