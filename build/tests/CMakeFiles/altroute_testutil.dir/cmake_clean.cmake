file(REMOVE_RECURSE
  "CMakeFiles/altroute_testutil.dir/testutil.cc.o"
  "CMakeFiles/altroute_testutil.dir/testutil.cc.o.d"
  "libaltroute_testutil.a"
  "libaltroute_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
