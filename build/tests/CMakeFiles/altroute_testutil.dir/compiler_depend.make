# Empty compiler generated dependencies file for altroute_testutil.
# This may be replaced when dependencies are built.
