file(REMOVE_RECURSE
  "libaltroute_testutil.a"
)
