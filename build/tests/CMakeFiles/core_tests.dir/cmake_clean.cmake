file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/alternative_graph_test.cc.o"
  "CMakeFiles/core_tests.dir/core/alternative_graph_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/commercial_test.cc.o"
  "CMakeFiles/core_tests.dir/core/commercial_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/dissimilarity_test.cc.o"
  "CMakeFiles/core_tests.dir/core/dissimilarity_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/engine_registry_test.cc.o"
  "CMakeFiles/core_tests.dir/core/engine_registry_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/filters_test.cc.o"
  "CMakeFiles/core_tests.dir/core/filters_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/path_test.cc.o"
  "CMakeFiles/core_tests.dir/core/path_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/penalty_test.cc.o"
  "CMakeFiles/core_tests.dir/core/penalty_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/plateau_test.cc.o"
  "CMakeFiles/core_tests.dir/core/plateau_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/quality_test.cc.o"
  "CMakeFiles/core_tests.dir/core/quality_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/similarity_test.cc.o"
  "CMakeFiles/core_tests.dir/core/similarity_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/skyline_test.cc.o"
  "CMakeFiles/core_tests.dir/core/skyline_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/turn_aware_alternatives_test.cc.o"
  "CMakeFiles/core_tests.dir/core/turn_aware_alternatives_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/yen_overlap_test.cc.o"
  "CMakeFiles/core_tests.dir/core/yen_overlap_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
