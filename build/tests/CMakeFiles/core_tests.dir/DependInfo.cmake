
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alternative_graph_test.cc" "tests/CMakeFiles/core_tests.dir/core/alternative_graph_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/alternative_graph_test.cc.o.d"
  "/root/repo/tests/core/commercial_test.cc" "tests/CMakeFiles/core_tests.dir/core/commercial_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/commercial_test.cc.o.d"
  "/root/repo/tests/core/dissimilarity_test.cc" "tests/CMakeFiles/core_tests.dir/core/dissimilarity_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dissimilarity_test.cc.o.d"
  "/root/repo/tests/core/engine_registry_test.cc" "tests/CMakeFiles/core_tests.dir/core/engine_registry_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/engine_registry_test.cc.o.d"
  "/root/repo/tests/core/filters_test.cc" "tests/CMakeFiles/core_tests.dir/core/filters_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/filters_test.cc.o.d"
  "/root/repo/tests/core/path_test.cc" "tests/CMakeFiles/core_tests.dir/core/path_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/path_test.cc.o.d"
  "/root/repo/tests/core/penalty_test.cc" "tests/CMakeFiles/core_tests.dir/core/penalty_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/penalty_test.cc.o.d"
  "/root/repo/tests/core/plateau_test.cc" "tests/CMakeFiles/core_tests.dir/core/plateau_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/plateau_test.cc.o.d"
  "/root/repo/tests/core/quality_test.cc" "tests/CMakeFiles/core_tests.dir/core/quality_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/quality_test.cc.o.d"
  "/root/repo/tests/core/similarity_test.cc" "tests/CMakeFiles/core_tests.dir/core/similarity_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/similarity_test.cc.o.d"
  "/root/repo/tests/core/skyline_test.cc" "tests/CMakeFiles/core_tests.dir/core/skyline_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/skyline_test.cc.o.d"
  "/root/repo/tests/core/turn_aware_alternatives_test.cc" "tests/CMakeFiles/core_tests.dir/core/turn_aware_alternatives_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/turn_aware_alternatives_test.cc.o.d"
  "/root/repo/tests/core/yen_overlap_test.cc" "tests/CMakeFiles/core_tests.dir/core/yen_overlap_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/yen_overlap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/altroute_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/userstudy/CMakeFiles/altroute_userstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/altroute_server.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/altroute_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/altroute_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/altroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
