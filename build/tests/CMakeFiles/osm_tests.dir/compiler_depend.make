# Empty compiler generated dependencies file for osm_tests.
# This may be replaced when dependencies are built.
