file(REMOVE_RECURSE
  "CMakeFiles/osm_tests.dir/osm/network_constructor_test.cc.o"
  "CMakeFiles/osm_tests.dir/osm/network_constructor_test.cc.o.d"
  "CMakeFiles/osm_tests.dir/osm/osm_parser_test.cc.o"
  "CMakeFiles/osm_tests.dir/osm/osm_parser_test.cc.o.d"
  "CMakeFiles/osm_tests.dir/osm/restrictions_test.cc.o"
  "CMakeFiles/osm_tests.dir/osm/restrictions_test.cc.o.d"
  "CMakeFiles/osm_tests.dir/osm/speed_model_test.cc.o"
  "CMakeFiles/osm_tests.dir/osm/speed_model_test.cc.o.d"
  "osm_tests"
  "osm_tests.pdb"
  "osm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
