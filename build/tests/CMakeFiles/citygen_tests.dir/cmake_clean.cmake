file(REMOVE_RECURSE
  "CMakeFiles/citygen_tests.dir/citygen/city_generator_test.cc.o"
  "CMakeFiles/citygen_tests.dir/citygen/city_generator_test.cc.o.d"
  "citygen_tests"
  "citygen_tests.pdb"
  "citygen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citygen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
