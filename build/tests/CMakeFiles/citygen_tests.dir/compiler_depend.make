# Empty compiler generated dependencies file for citygen_tests.
# This may be replaced when dependencies are built.
