file(REMOVE_RECURSE
  "CMakeFiles/geo_tests.dir/geo/bounding_box_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/bounding_box_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/latlng_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/latlng_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/polyline_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/polyline_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/simplify_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/simplify_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/spatial_index_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/spatial_index_test.cc.o.d"
  "geo_tests"
  "geo_tests.pdb"
  "geo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
