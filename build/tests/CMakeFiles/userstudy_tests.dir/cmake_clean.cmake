file(REMOVE_RECURSE
  "CMakeFiles/userstudy_tests.dir/userstudy/comments_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/comments_test.cc.o.d"
  "CMakeFiles/userstudy_tests.dir/userstudy/export_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/export_test.cc.o.d"
  "CMakeFiles/userstudy_tests.dir/userstudy/participant_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/participant_test.cc.o.d"
  "CMakeFiles/userstudy_tests.dir/userstudy/rating_model_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/rating_model_test.cc.o.d"
  "CMakeFiles/userstudy_tests.dir/userstudy/report_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/report_test.cc.o.d"
  "CMakeFiles/userstudy_tests.dir/userstudy/study_runner_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/study_runner_test.cc.o.d"
  "CMakeFiles/userstudy_tests.dir/userstudy/tables_test.cc.o"
  "CMakeFiles/userstudy_tests.dir/userstudy/tables_test.cc.o.d"
  "userstudy_tests"
  "userstudy_tests.pdb"
  "userstudy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userstudy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
