
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/userstudy/comments_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/comments_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/comments_test.cc.o.d"
  "/root/repo/tests/userstudy/export_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/export_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/export_test.cc.o.d"
  "/root/repo/tests/userstudy/participant_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/participant_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/participant_test.cc.o.d"
  "/root/repo/tests/userstudy/rating_model_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/rating_model_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/rating_model_test.cc.o.d"
  "/root/repo/tests/userstudy/report_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/report_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/report_test.cc.o.d"
  "/root/repo/tests/userstudy/study_runner_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/study_runner_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/study_runner_test.cc.o.d"
  "/root/repo/tests/userstudy/tables_test.cc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/tables_test.cc.o" "gcc" "tests/CMakeFiles/userstudy_tests.dir/userstudy/tables_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/altroute_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/userstudy/CMakeFiles/altroute_userstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/altroute_server.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/altroute_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/altroute_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/altroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
