# Empty compiler generated dependencies file for userstudy_tests.
# This may be replaced when dependencies are built.
