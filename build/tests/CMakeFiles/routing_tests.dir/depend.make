# Empty dependencies file for routing_tests.
# This may be replaced when dependencies are built.
