
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing/astar_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/astar_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/astar_test.cc.o.d"
  "/root/repo/tests/routing/bidirectional_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/bidirectional_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/bidirectional_test.cc.o.d"
  "/root/repo/tests/routing/contraction_hierarchy_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/contraction_hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/contraction_hierarchy_test.cc.o.d"
  "/root/repo/tests/routing/dijkstra_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/dijkstra_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/dijkstra_test.cc.o.d"
  "/root/repo/tests/routing/indexed_heap_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/indexed_heap_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/indexed_heap_test.cc.o.d"
  "/root/repo/tests/routing/many_to_many_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/many_to_many_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/many_to_many_test.cc.o.d"
  "/root/repo/tests/routing/pareto_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/pareto_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/pareto_test.cc.o.d"
  "/root/repo/tests/routing/phast_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/phast_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/phast_test.cc.o.d"
  "/root/repo/tests/routing/turn_aware_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/turn_aware_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/turn_aware_test.cc.o.d"
  "/root/repo/tests/routing/yen_test.cc" "tests/CMakeFiles/routing_tests.dir/routing/yen_test.cc.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/yen_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/altroute_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/userstudy/CMakeFiles/altroute_userstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/altroute_server.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/altroute_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/altroute_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/altroute_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/altroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/altroute_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/altroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/altroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
