file(REMOVE_RECURSE
  "CMakeFiles/routing_tests.dir/routing/astar_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/astar_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/bidirectional_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/bidirectional_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/contraction_hierarchy_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/contraction_hierarchy_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/dijkstra_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/dijkstra_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/indexed_heap_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/indexed_heap_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/many_to_many_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/many_to_many_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/pareto_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/pareto_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/phast_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/phast_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/turn_aware_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/turn_aware_test.cc.o.d"
  "CMakeFiles/routing_tests.dir/routing/yen_test.cc.o"
  "CMakeFiles/routing_tests.dir/routing/yen_test.cc.o.d"
  "routing_tests"
  "routing_tests.pdb"
  "routing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
