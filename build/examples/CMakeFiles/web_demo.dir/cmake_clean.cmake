file(REMOVE_RECURSE
  "CMakeFiles/web_demo.dir/web_demo.cpp.o"
  "CMakeFiles/web_demo.dir/web_demo.cpp.o.d"
  "web_demo"
  "web_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
