# Empty dependencies file for web_demo.
# This may be replaced when dependencies are built.
