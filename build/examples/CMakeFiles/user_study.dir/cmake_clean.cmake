file(REMOVE_RECURSE
  "CMakeFiles/user_study.dir/user_study.cpp.o"
  "CMakeFiles/user_study.dir/user_study.cpp.o.d"
  "user_study"
  "user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
