# Empty dependencies file for user_study.
# This may be replaced when dependencies are built.
