# Empty dependencies file for restricted_routing.
# This may be replaced when dependencies are built.
