file(REMOVE_RECURSE
  "CMakeFiles/restricted_routing.dir/restricted_routing.cpp.o"
  "CMakeFiles/restricted_routing.dir/restricted_routing.cpp.o.d"
  "restricted_routing"
  "restricted_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restricted_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
